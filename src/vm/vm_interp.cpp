// The execution engine: dispatch loop, instruction interpreter, frames,
// yield points, natives.
#include <cstdio>

#include "src/common/io.hpp"
#include "src/vm/boot_image.hpp"
#include "src/vm/vm.hpp"

namespace dejavu::vm {

using bytecode::Instr;
using bytecode::Op;
using heap::Addr;
using threads::MonitorId;
using threads::SwitchReason;
using threads::Tid;

// ----------------------------------------------------------- run control

void Vm::run() {
  if (!booted_) boot();
  while (!finished_) {
    step(1u << 20);
    if (stopped_at_probe_) break;
  }
  finish();
}

uint64_t Vm::step(uint64_t max_instr) {
  DV_CHECK_MSG(booted_, "step before boot");
  stopped_at_probe_ = false;
  uint64_t done = 0;
  while (done < max_instr && !halted_) {
    if (safepoint_requested_) {
      // Loop-top = safepoint: preemption unmasked, no native in flight,
      // any pending dispatch not yet begun. One-shot by construction.
      safepoint_requested_ = false;
      if (hooks_ != nullptr) hooks_->on_safepoint(*this);
    }
    if (!dispatch_if_needed()) {
      finished_ = true;
      break;
    }
    ExecContext& c = cur();
    if (c.pending_prologue) {
      // The method-prologue yield point fires before the first instruction
      // of a freshly pushed frame, attributed to the executing thread.
      c.pending_prologue = false;
      maybe_yield_point();
      if (threads_->current() == threads::kNoThread) continue;
    }
    if (probe_) {
      FrameView fv = frame_view(c, c.frames.back());
      if (probe_(*this, fv)) {
        stopped_at_probe_ = true;
        break;
      }
    }
    execute_instruction();
    ++done;
  }
  if (halted_) finished_ = true;
  return done;
}

bool Vm::step_one() {
  DV_CHECK_MSG(booted_, "step before boot");
  if (halted_ || finished_) return false;
  for (;;) {
    if (safepoint_requested_) {
      safepoint_requested_ = false;
      if (hooks_ != nullptr) hooks_->on_safepoint(*this);
    }
    if (!dispatch_if_needed()) {
      finished_ = true;
      return false;
    }
    ExecContext& c = cur();
    if (c.pending_prologue) {
      c.pending_prologue = false;
      maybe_yield_point();
      if (threads_->current() == threads::kNoThread) continue;
    }
    execute_instruction();
    if (halted_) finished_ = true;
    return true;
  }
}

bool Vm::dispatch_if_needed() {
  if (halted_) return false;
  if (threads_->current() != threads::kNoThread) return true;
  return threads_->schedule_next() != threads::kNoThread;
}

void Vm::finish() {
  finished_ = true;
  if (hooks_ != nullptr && !hooks_detached_) {
    hooks_detached_ = true;
    hooks_->detach(*this);
  }
}

BehaviorSummary Vm::summary() const {
  BehaviorSummary s;
  s.output_hash = out_hash_.digest();
  s.heap_hash = heap_->image_hash();
  s.switch_seq_hash = switch_hash_.digest();
  s.instr_count = instr_count_;
  s.switch_count = threads_->switch_count();
  s.preempt_count = preempt_count_;
  s.yield_points = yield_points_;
  s.gc_count = heap_->stats().gc_count;
  s.alloc_count = heap_->stats().alloc_count;
  s.audit_digest = audit_.digest();
  return s;
}

// --------------------------------------------------------------- frames

ExecContext& Vm::ctx(Tid t) {
  DV_CHECK(t != threads::kNoThread && t < contexts_.size());
  return *contexts_[t];
}

const ExecContext& Vm::ctx(Tid t) const {
  DV_CHECK(t != threads::kNoThread && t < contexts_.size());
  return *contexts_[t];
}

ExecContext& Vm::cur() { return ctx(threads_->current()); }

void Vm::grow_stack(ExecContext& c, uint32_t min_capacity) {
  uint32_t newcap = c.capacity_slots;
  while (newcap < min_capacity) newcap *= 2;
  // Jalapeño activation stacks are heap arrays; growth allocates a new one
  // (and the old becomes garbage) -- a side effect the symmetry machinery
  // must keep identical across modes (§2.4 "Symmetry in Stack Overflow").
  uint64_t arr = galloc_array_bytes(uint64_t(newcap) * 8);
  c.stack_array = arr;
  heap_->set_field_ref(Addr(c.thread_obj), kThreadStack, Addr(arr));
  c.capacity_slots = newcap;
  audit_.append(AuditKind::kStackGrow,
                threads_->name(c.tid) + ":" + std::to_string(newcap),
                instr_count_);
}

void Vm::push_frame(ExecContext& c, CompiledMethod* m, const uint64_t*,
                    size_t nargs_in_place) {
  DV_CHECK_MSG(m->compiled, "push_frame of uncompiled method");
  uint32_t locals_base = c.sp - uint32_t(nargs_in_place);
  uint32_t num_locals = m->def->num_locals;
  uint32_t need_top = locals_base + num_locals + m->verified.max_stack;
  if (need_top > c.capacity_slots) grow_stack(c, need_top);
  if (c.slots.size() < need_top) c.slots.resize(need_top, 0);
  for (uint32_t j = uint32_t(nargs_in_place); j < num_locals; ++j)
    c.slots[locals_base + j] = 0;
  c.frames.push_back(Frame{m, 0, locals_base, locals_base + num_locals});
  c.sp = locals_base + num_locals;
  c.pending_prologue = (mask_depth_ == 0);
}

void Vm::pop_frame_return(ExecContext& c, bool has_value, uint64_t value) {
  Frame f = c.frames.back();
  c.frames.pop_back();
  c.sp = f.locals_base;  // pops the arguments from the caller's stack
  if (c.frames.empty()) {
    if (hooks_ != nullptr && hooks_->wants_thread_events()) {
      ThreadEvent ev;
      ev.op = ThreadOp::kExit;
      ev.tid = c.tid;
      ev.instr_index = instr_count_;
      hooks_->on_thread_event(ev);
    }
    threads_->on_thread_exit();
    return;
  }
  c.frames.back().pc += 1;
  if (has_value) push_slot(value);
}

Tid Vm::spawn_thread(CompiledMethod* entry, uint64_t /*unused*/,
                     const std::string& name) {
  Tid t = threads_->create_thread(name);
  if (contexts_.size() <= t) contexts_.resize(t + 1);
  contexts_[t] = std::make_unique<ExecContext>();
  ExecContext& c = *contexts_[t];
  c.tid = t;
  c.capacity_slots = opts_.initial_stack_slots;

  TempRoots tr(*this);
  size_t h_stack = tr.add(galloc_array_bytes(uint64_t(c.capacity_slots) * 8));
  size_t h_name = tr.add(make_guest_string(name));
  uint64_t tobj = galloc_object(kTypeThread);
  heap_->set_field_ref(Addr(tobj), kThreadName, Addr(tr.get(h_name)));
  heap_->set_field_i64(Addr(tobj), kThreadTid, int64_t(t));
  heap_->set_field_ref(Addr(tobj), kThreadStack, Addr(tr.get(h_stack)));
  c.thread_obj = tobj;
  c.stack_array = tr.get(h_stack);
  append_to_table(kRegThreadTable, kRegThreadCount, c.thread_obj);

  // Entry frame: one ref local (the argument), filled by the caller.
  c.sp = 0;
  push_frame(c, entry, nullptr, 0);
  c.pending_prologue = true;
  audit_.append(AuditKind::kThreadCreate, name, instr_count_);
  return t;
}

FrameView Vm::frame_view(const ExecContext&, const Frame& f) const {
  FrameView fv;
  fv.class_name = f.method->owner->name;
  fv.method_name = f.method->def->name;
  fv.pc = f.pc;
  fv.line = f.method->def->code[f.pc].line;
  fv.method_metadata_addr = f.method->metadata_obj;
  return fv;
}

std::vector<FrameView> Vm::frames_of(Tid t) const {
  std::vector<FrameView> out;
  if (t == threads::kNoThread || t >= contexts_.size() ||
      contexts_[t] == nullptr)
    return out;
  const ExecContext& c = *contexts_[t];
  for (const Frame& f : c.frames) out.push_back(frame_view(c, f));
  return out;
}

FrameView Vm::current_frame_view() const {
  Tid t = threads_->current();
  DV_CHECK(t != threads::kNoThread);
  const ExecContext& c = ctx(t);
  DV_CHECK(!c.frames.empty());
  return frame_view(c, c.frames.back());
}

// ------------------------------------------------------------ stack ops

void Vm::push_slot(uint64_t v) {
  ExecContext& c = cur();
  if (c.slots.size() <= c.sp) c.slots.resize(c.sp + 16, 0);
  c.slots[c.sp++] = v;
}

uint64_t Vm::pop_slot() {
  ExecContext& c = cur();
  DV_CHECK_MSG(c.sp > c.frames.back().stack_base, "operand stack underflow in "
               << c.frames.back().method->def->name << " pc="
               << c.frames.back().pc << " sp=" << c.sp << " base="
               << c.frames.back().stack_base);
  return c.slots[--c.sp];
}

uint64_t Vm::peek_slot(uint32_t depth_from_top) const {
  const ExecContext& c = ctx(threads_->current());
  DV_CHECK(c.sp > depth_from_top);
  return c.slots[c.sp - 1 - depth_from_top];
}

void Vm::emit_output(const std::string& s) {
  out_ += s;
  out_hash_.update_str(s);
  if (opts_.echo_output) std::fwrite(s.data(), 1, s.size(), stdout);
}

// ----------------------------------------------------------- yield point

void Vm::maybe_yield_point() {
  if (mask_depth_ != 0) return;  // native callbacks run unpreemptible
  yield_points_++;
  bool hw = timer_.fired(instr_count_);
  bool do_switch = hooks_ != nullptr ? hooks_->yield_point(hw) : hw;
  if (do_switch) {
    timer_.rearm(instr_count_);
    preempt_count_++;
    threads_->switch_out(SwitchReason::kPreempt);
  }
}

int64_t Vm::nd(NdKind kind, int64_t live) {
  return hooks_ != nullptr ? hooks_->nd_value(kind, live) : live;
}

void Vm::emit_monitor_event(MonitorOp op, Tid tid, MonitorId mid, Tid holder,
                            bool recursive, uint32_t woken) {
  MonitorEvent e;
  e.op = op;
  e.tid = tid;
  e.monitor = mid;
  e.holder = holder;
  e.recursive = recursive;
  e.woken = woken;
  e.instr_index = instr_count_;
  hooks_->on_monitor_event(e);
}

threads::MonitorId Vm::monitor_of(Addr obj) {
  DV_CHECK_MSG(obj != heap::kNull, "synchronization on null");
  uint32_t lw = heap_->lockword(obj);
  if (lw == 0) {
    lw = threads_->create_monitor();  // monitor inflation, deterministic
    heap_->set_lockword(obj, lw);
  }
  return MonitorId(lw);
}

// ------------------------------------------------------------- natives

int64_t NativeContext::call_guest(const std::string& cls,
                                  const std::string& method,
                                  const std::vector<int64_t>& args) {
  return vm_.native_callback_from_record(cls, method, args);
}

int64_t Vm::native_callback_from_record(const std::string& cls,
                                        const std::string& method,
                                        const std::vector<int64_t>& args) {
  if (hooks_ != nullptr) hooks_->native_record_callback(cls, method, args);
  return call_guest_masked(cls, method, args);
}

int64_t Vm::call_guest_masked(const std::string& cls,
                              const std::string& method,
                              const std::vector<int64_t>& args) {
  RuntimeClass* rc = const_cast<RuntimeClass*>(runtime_class(cls));
  DV_CHECK_MSG(rc != nullptr, "callback target class " << cls << " missing");
  ensure_loaded(rc);
  CompiledMethod* m = rc->find_method(method);
  DV_CHECK_MSG(m != nullptr, "callback target " << cls << "." << method
                                                << " missing");
  DV_CHECK_MSG(!m->def->is_virtual, "callbacks must target static methods");
  DV_CHECK_MSG(m->def->args.size() == args.size(),
               "callback arity mismatch for " << cls << "." << method);
  for (auto t : m->def->args)
    DV_CHECK_MSG(t == bytecode::ValueType::kI64,
                 "callback arguments must be i64");
  ensure_compiled(m);

  mask_depth_++;
  ExecContext& c = cur();
  size_t entry_depth = c.frames.size();
  // The frame beneath us is parked mid-instruction on its kNativeCall.
  // pop_frame_return advances the caller's pc (the invoke convention:
  // kInvokeStatic defers its pc++ to the callee's return), but here the
  // native-call dispatch performs its own pc++ when do_native_call
  // returns -- so the callback's return must leave the caller's pc
  // untouched, or the instruction after the nativecall is skipped.
  uint32_t caller_pc = c.frames.back().pc;
  for (int64_t a : args) push_slot(uint64_t(a));
  push_frame(c, m, nullptr, args.size());
  while (c.frames.size() > entry_depth) {
    DV_CHECK_MSG(threads_->current() == c.tid,
                 "blocking operation inside a native callback");
    execute_instruction();
  }
  c.frames.back().pc = caller_pc;
  int64_t ret = 0;
  if (m->def->ret.has_value()) ret = int64_t(pop_slot());
  mask_depth_--;
  return ret;
}

void Vm::do_native_call(const Instr& ins) {
  const std::string& name = prog_.pool.native_refs[ins.a];
  size_t nargs = size_t(ins.b);
  std::vector<int64_t> args(nargs);
  for (size_t i = nargs; i-- > 0;) args[i] = int64_t(pop_slot());

  int64_t result = 0;
  if (hooks_ != nullptr && !hooks_->native_executes()) {
    // Replay: regenerate callbacks and the return value from the trace
    // without executing the native (§2.5).
    for (;;) {
      std::string cb_cls, cb_m;
      std::vector<int64_t> cb_args;
      int64_t ret = 0;
      if (hooks_->native_replay_next(&cb_cls, &cb_m, &cb_args, &ret)) {
        call_guest_masked(cb_cls, cb_m, cb_args);
      } else {
        result = ret;
        break;
      }
    }
  } else {
    DV_CHECK_MSG(natives_ != nullptr, "no native registry installed");
    const NativeFn* fn = natives_->find(name);
    DV_CHECK_MSG(fn != nullptr, "unregistered native " << name);
    NativeContext nc(*this);
    result = (*fn)(nc, args);
    if (hooks_ != nullptr) result = hooks_->native_record_return(result);
  }
  push_slot(uint64_t(result));
}

// -------------------------------------------------------- interpreter

void Vm::do_invoke(CompiledMethod* callee) {
  ensure_loaded(callee->owner);
  ensure_compiled(callee);
  ExecContext& c = cur();
  push_frame(c, callee, nullptr, callee->def->args.size());
}

void Vm::execute_instruction() {
  instr_count_++;
  DV_CHECK_MSG(instr_count_ <= opts_.max_instructions,
               "instruction budget exhausted (runaway?)");
  ExecContext& c = cur();
  Frame& f = c.frames.back();
  CompiledMethod* m = f.method;
  const Instr& ins = m->def->code[f.pc];

  auto pop_i = [&] { return int64_t(pop_slot()); };
  auto push_i = [&](int64_t v) { push_slot(uint64_t(v)); };
  auto pop_ref = [&] { return Addr(pop_slot()); };
  auto bin = [&](auto fn) {
    int64_t b = pop_i();
    int64_t a = pop_i();
    push_i(fn(a, b));
    f.pc++;
  };
  // Backward branches carry yield points; the yield point executes when
  // the edge is *taken* (Jalapeño inserts yield code on the backedge).
  auto take_branch = [&](int32_t target) {
    bool backward = target <= int32_t(f.pc);
    f.pc = uint32_t(target);
    if (backward) maybe_yield_point();
  };
  bool mem_hooks = hooks_ != nullptr && hooks_->wants_memory_events();
  if (hooks_ != nullptr && hooks_->wants_instruction_events()) {
    InstrEvent ev;
    ev.tid = c.tid;
    ev.owner = &m->owner->name;
    ev.method = &m->def->name;
    ev.pc = f.pc;
    ev.opcode = uint8_t(ins.op);
    ev.line = ins.line;
    ev.frame_depth = uint32_t(c.frames.size());
    ev.instr_index = instr_count_;
    hooks_->on_instruction(ev);
  }

  using enum Op;
  switch (ins.op) {
    case kNop:
      f.pc++;
      break;
    case kPushI:
      push_i(ins.b);
      f.pc++;
      break;
    case kPushNull:
      push_slot(0);
      f.pc++;
      break;
    case kPushStr:
      push_slot(intern_pool_string(ins.a));
      cur().frames.back().pc++;  // re-fetch: interning may not move frames,
                                 // but keep the invariant explicit
      break;
    case kPop:
      pop_slot();
      f.pc++;
      break;
    case kDup: {
      uint64_t v = peek_slot();
      push_slot(v);
      f.pc++;
      break;
    }
    case kSwap: {
      uint64_t a = pop_slot();
      uint64_t b = pop_slot();
      push_slot(a);
      push_slot(b);
      f.pc++;
      break;
    }
    case kLoad:
      push_slot(c.slots[f.locals_base + uint32_t(ins.a)]);
      f.pc++;
      break;
    case kStore:
      c.slots[f.locals_base + uint32_t(ins.a)] = pop_slot();
      f.pc++;
      break;
    case kAdd:
      bin([](int64_t a, int64_t b) { return a + b; });
      break;
    case kSub:
      bin([](int64_t a, int64_t b) { return a - b; });
      break;
    case kMul:
      bin([](int64_t a, int64_t b) { return a * b; });
      break;
    case kDiv:
      bin([](int64_t a, int64_t b) {
        DV_CHECK_MSG(b != 0, "division by zero");
        return a / b;
      });
      break;
    case kMod:
      bin([](int64_t a, int64_t b) {
        DV_CHECK_MSG(b != 0, "modulo by zero");
        return a % b;
      });
      break;
    case kNeg:
      push_i(-pop_i());
      f.pc++;
      break;
    case kAnd:
      bin([](int64_t a, int64_t b) { return a & b; });
      break;
    case kOr:
      bin([](int64_t a, int64_t b) { return a | b; });
      break;
    case kXor:
      bin([](int64_t a, int64_t b) { return a ^ b; });
      break;
    case kShl:
      bin([](int64_t a, int64_t b) { return int64_t(uint64_t(a) << (b & 63)); });
      break;
    case kShr:
      bin([](int64_t a, int64_t b) { return a >> (b & 63); });
      break;
    case kCmpLt:
      bin([](int64_t a, int64_t b) { return int64_t(a < b); });
      break;
    case kCmpLe:
      bin([](int64_t a, int64_t b) { return int64_t(a <= b); });
      break;
    case kCmpGt:
      bin([](int64_t a, int64_t b) { return int64_t(a > b); });
      break;
    case kCmpGe:
      bin([](int64_t a, int64_t b) { return int64_t(a >= b); });
      break;
    case kCmpEq:
      bin([](int64_t a, int64_t b) { return int64_t(a == b); });
      break;
    case kCmpNe:
      bin([](int64_t a, int64_t b) { return int64_t(a != b); });
      break;
    case kAcmpEq: {
      Addr b = pop_ref();
      Addr a = pop_ref();
      push_i(int64_t(a == b));
      f.pc++;
      break;
    }
    case kAcmpNe: {
      Addr b = pop_ref();
      Addr a = pop_ref();
      push_i(int64_t(a != b));
      f.pc++;
      break;
    }
    case kJmp:
      take_branch(ins.a);
      break;
    case kJz: {
      int64_t v = pop_i();
      if (v == 0) {
        take_branch(ins.a);
      } else {
        f.pc++;
      }
      break;
    }
    case kJnz: {
      int64_t v = pop_i();
      if (v != 0) {
        take_branch(ins.a);
      } else {
        f.pc++;
      }
      break;
    }
    case kInvokeStatic:
      do_invoke(m->resolved[f.pc].callee);
      break;
    case kInvokeVirtual: {
      size_t nargs = 0;
      {
        const bytecode::MethodRef& mr = prog_.pool.method_refs[ins.a];
        // Receiver is the deepest argument; count from the *named* target's
        // signature (overrides keep the signature, enforced at verify).
        const bytecode::MethodDef* named = bytecode::resolve_method_def(
            prog_, mr.class_name, mr.method_name);
        nargs = named->args.size();
        Addr recv = Addr(peek_slot(uint32_t(nargs - 1)));
        DV_CHECK_MSG(recv != heap::kNull, "invoke_virtual on null");
        const RuntimeClass* rc =
            runtime_class_by_type_id(heap_->class_of(recv));
        DV_CHECK_MSG(rc != nullptr, "receiver has no runtime class");
        auto it = rc->vtable.find(mr.method_name);
        DV_CHECK_MSG(it != rc->vtable.end(),
                     "no virtual method " << mr.method_name << " on "
                                          << rc->name);
        do_invoke(it->second);
      }
      break;
    }
    case kRet:
      pop_frame_return(c, false, 0);
      break;
    case kRetVal: {
      uint64_t v = pop_slot();
      pop_frame_return(c, true, v);
      break;
    }
    case kNew: {
      RuntimeClass* rc = m->resolved[f.pc].cls;
      ensure_loaded(rc);
      uint64_t obj = galloc_object(rc->instance_type_id);
      push_slot(obj);
      cur().frames.back().pc++;
      break;
    }
    case kGetField: {
      const ResolvedOp& r = m->resolved[f.pc];
      Addr obj = pop_ref();
      int64_t v = heap_->field_i64(obj, uint32_t(r.slot));
      if (mem_hooks) hooks_->on_heap_read(obj, uint32_t(r.slot), &v, r.ref);
      push_i(v);
      f.pc++;
      break;
    }
    case kPutField: {
      const ResolvedOp& r = m->resolved[f.pc];
      uint64_t v = pop_slot();
      Addr obj = pop_ref();
      if (mem_hooks)
        hooks_->on_heap_write(obj, uint32_t(r.slot), int64_t(v), r.ref);
      heap_->set_field_i64(obj, uint32_t(r.slot), int64_t(v));
      f.pc++;
      break;
    }
    case kGetStatic: {
      const ResolvedOp& r = m->resolved[f.pc];
      ensure_loaded(r.cls);
      Addr obj = Addr(r.cls->statics_obj);
      int64_t v = heap_->field_i64(obj, uint32_t(r.slot));
      if (mem_hooks) hooks_->on_heap_read(obj, uint32_t(r.slot), &v, r.ref);
      push_i(v);
      cur().frames.back().pc++;
      break;
    }
    case kPutStatic: {
      const ResolvedOp& r = m->resolved[f.pc];
      ensure_loaded(r.cls);
      uint64_t v = pop_slot();
      Addr obj = Addr(r.cls->statics_obj);
      if (mem_hooks)
        hooks_->on_heap_write(obj, uint32_t(r.slot), int64_t(v), r.ref);
      heap_->set_field_i64(obj, uint32_t(r.slot), int64_t(v));
      cur().frames.back().pc++;
      break;
    }
    case kNewArrI: {
      int64_t n = pop_i();
      DV_CHECK_MSG(n >= 0, "negative array length");
      push_slot(galloc_array_i64(uint64_t(n)));
      cur().frames.back().pc++;
      break;
    }
    case kNewArrR: {
      int64_t n = pop_i();
      DV_CHECK_MSG(n >= 0, "negative array length");
      push_slot(galloc_array_ref(uint64_t(n)));
      cur().frames.back().pc++;
      break;
    }
    case kALoadI:
    case kALoadR: {
      int64_t idx = pop_i();
      Addr arr = pop_ref();
      int64_t v = heap_->array_i64(arr, uint64_t(idx));
      if (mem_hooks)
        hooks_->on_heap_read(arr, uint32_t(idx), &v, ins.op == kALoadR);
      push_i(v);
      f.pc++;
      break;
    }
    case kAStoreI:
    case kAStoreR: {
      uint64_t v = pop_slot();
      int64_t idx = pop_i();
      Addr arr = pop_ref();
      if (mem_hooks)
        hooks_->on_heap_write(arr, uint32_t(idx), int64_t(v),
                              ins.op == kAStoreR);
      heap_->set_array_i64(arr, uint64_t(idx), int64_t(v));
      f.pc++;
      break;
    }
    case kArrayLen: {
      Addr arr = pop_ref();
      push_i(int64_t(heap_->array_length(arr)));
      f.pc++;
      break;
    }
    case kMonitorEnter: {
      Addr obj = Addr(peek_slot());
      MonitorId mid = monitor_of(obj);
      bool mon_hooks = hooks_ != nullptr && hooks_->wants_monitor_events();
      Tid prev_owner = mon_hooks ? threads_->monitor_owner(mid)
                                 : threads::kNoThread;
      if (threads_->monitor_enter(mid)) {
        pop_slot();
        f.pc++;
        if (mon_hooks)
          emit_monitor_event(MonitorOp::kEnterAcquired, c.tid, mid,
                             threads::kNoThread, prev_owner == c.tid, 0);
      } else if (mon_hooks) {
        emit_monitor_event(MonitorOp::kEnterBlocked, c.tid, mid, prev_owner,
                           false, 0);
      }
      // else: blocked; the instruction re-executes when rescheduled
      break;
    }
    case kMonitorExit: {
      Addr obj = pop_ref();
      MonitorId mid = monitor_of(obj);
      threads_->monitor_exit(mid);
      f.pc++;
      if (hooks_ != nullptr && hooks_->wants_monitor_events())
        emit_monitor_event(MonitorOp::kExit, c.tid, mid, threads::kNoThread,
                           false, 0);
      break;
    }
    case kWait:
    case kTimedWait: {
      bool mon_hooks = hooks_ != nullptr && hooks_->wants_monitor_events();
      if (c.op_phase == 0) {
        int64_t timeout = -1;
        if (ins.op == kTimedWait) timeout = pop_i();
        Addr obj = Addr(peek_slot());
        MonitorId mid = monitor_of(obj);
        threads::WaitOutcome imm;
        if (!threads_->wait_begin(mid, timeout, &imm)) {
          pop_slot();
          push_i(imm.interrupted ? 1 : 0);
          f.pc++;
          if (mon_hooks) {
            // Interrupted-before-wait completes in place: a zero-length wait.
            emit_monitor_event(MonitorOp::kWaitBegin, c.tid, mid,
                               threads::kNoThread, false, 0);
            emit_monitor_event(MonitorOp::kWaitEnd, c.tid, mid,
                               threads::kNoThread, false, 0);
          }
        } else {
          c.op_phase = 1;  // parked; must re-acquire when rescheduled
          if (mon_hooks)
            emit_monitor_event(MonitorOp::kWaitBegin, c.tid, mid,
                               threads::kNoThread, false, 0);
        }
      } else {
        Addr obj = Addr(peek_slot());
        MonitorId mid = monitor_of(obj);
        if (threads_->monitor_enter(mid)) {
          threads::WaitOutcome out = threads_->wait_finish(mid);
          c.op_phase = 0;
          pop_slot();
          push_i(out.interrupted ? 1 : 0);
          f.pc++;
          // kWaitEnd covers park + re-acquire: its distance from kWaitBegin
          // includes any contention on the way back in.
          if (mon_hooks)
            emit_monitor_event(MonitorOp::kWaitEnd, c.tid, mid,
                               threads::kNoThread, false, 0);
        }
        // else: blocked on re-acquisition; re-executes phase 1 later
      }
      break;
    }
    case kNotify: {
      Addr obj = pop_ref();
      MonitorId mid = monitor_of(obj);
      bool woke = threads_->notify_one(mid);
      f.pc++;
      if (hooks_ != nullptr && hooks_->wants_monitor_events())
        emit_monitor_event(MonitorOp::kNotifyOne, c.tid, mid,
                           threads::kNoThread, false, woke ? 1 : 0);
      break;
    }
    case kNotifyAll: {
      Addr obj = pop_ref();
      MonitorId mid = monitor_of(obj);
      int woke = threads_->notify_all(mid);
      f.pc++;
      if (hooks_ != nullptr && hooks_->wants_monitor_events())
        emit_monitor_event(MonitorOp::kNotifyAll, c.tid, mid,
                           threads::kNoThread, false, uint32_t(woke));
      break;
    }
    case kInterrupt: {
      Addr tobj = pop_ref();
      DV_CHECK_MSG(tobj != heap::kNull && heap_->class_of(tobj) == kTypeThread,
                   "interrupt target is not a Thread");
      threads_->interrupt(Tid(heap_->field_i64(tobj, kThreadTid)));
      f.pc++;
      break;
    }
    case kSpawn: {
      CompiledMethod* entry = m->resolved[f.pc].callee;
      ensure_loaded(entry->owner);
      ensure_compiled(entry);
      TempRoots tr(*this);
      size_t h_arg = tr.add(peek_slot());
      Tid t = spawn_thread(entry, 0,
                           "thread-" + std::to_string(contexts_.size()));
      ExecContext& nc = ctx(t);
      nc.slots[nc.frames.back().locals_base] = tr.get(h_arg);
      ExecContext& c2 = cur();  // re-establish (no move, but be explicit)
      (void)c2;
      pop_slot();
      push_slot(ctx(t).thread_obj);
      cur().frames.back().pc++;
      if (hooks_ != nullptr && hooks_->wants_thread_events()) {
        ThreadEvent ev;
        ev.op = ThreadOp::kSpawn;
        ev.tid = cur().tid;
        ev.other = t;
        ev.instr_index = instr_count_;
        hooks_->on_thread_event(ev);
      }
      break;
    }
    case kJoin: {
      Addr tobj = Addr(peek_slot());
      DV_CHECK_MSG(tobj != heap::kNull && heap_->class_of(tobj) == kTypeThread,
                   "join target is not a Thread");
      Tid target = Tid(heap_->field_i64(tobj, kThreadTid));
      if (!threads_->join_would_block(target)) {
        pop_slot();
        f.pc++;
        // Fires for both the immediate case and the re-execution after a
        // parked join wakes: either way the target has fully terminated.
        if (hooks_ != nullptr && hooks_->wants_thread_events()) {
          ThreadEvent ev;
          ev.op = ThreadOp::kJoinEnd;
          ev.tid = c.tid;
          ev.other = target;
          ev.instr_index = instr_count_;
          hooks_->on_thread_event(ev);
        }
      } else {
        threads_->join_begin(target);
        // pc unchanged: re-executes (and completes) after termination
      }
      break;
    }
    case kYield:
      f.pc++;
      threads_->switch_out(SwitchReason::kYield);
      break;
    case kSleep: {
      int64_t ms = pop_i();
      f.pc++;
      threads_->sleep_begin(ms);
      break;
    }
    case kCurrentThread:
      push_slot(c.thread_obj);
      f.pc++;
      break;
    case kNow:
      push_i(nd(NdKind::kClock, env_.clock_ms()));
      f.pc++;
      break;
    case kReadInput:
      push_i(nd(NdKind::kInput, env_.read_input()));
      f.pc++;
      break;
    case kEnvRand:
      push_i(nd(NdKind::kRand, env_.env_rand()));
      f.pc++;
      break;
    case kNativeCall:
      do_native_call(ins);
      cur().frames.back().pc++;
      break;
    case kPrintI:
      emit_output(std::to_string(pop_i()) + "\n");
      f.pc++;
      break;
    case kPrintLit:
      emit_output(prog_.pool.strings[ins.a]);
      f.pc++;
      break;
    case kPrintStr: {
      Addr s = pop_ref();
      emit_output(read_guest_string(s));
      f.pc++;
      break;
    }
    case kGcForce:
      heap_->collect();
      cur().frames.back().pc++;
      break;
    case kHalt:
      halted_ = true;
      break;
  }
}

}  // namespace dejavu::vm

// The JNI analog (§2.5).
//
// Native code can affect guest execution in exactly two ways: through
// return values and through callbacks into guest methods. DejaVu records
// both during record mode and regenerates them during replay -- the native
// function itself is *not executed* on replay. That is sufficient because
// (like Jalapeño's JNI) natives cannot obtain direct pointers into the
// guest heap: the only arguments and results are i64 values.
//
// Callbacks run with preemption masked (a documented simplification of
// Jalapeño's behaviour); they must not block.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace dejavu::vm {

class Vm;

// Handed to a native implementation; the only door back into the guest.
class NativeContext {
 public:
  explicit NativeContext(Vm& vm) : vm_(vm) {}

  // Invoke a static guest method synchronously (a JNI callback). The call
  // is recorded so replay can regenerate it. Returns the method's result
  // (0 for void methods).
  int64_t call_guest(const std::string& cls, const std::string& method,
                     const std::vector<int64_t>& args);

  Vm& vm() { return vm_; }

 private:
  Vm& vm_;
};

using NativeFn =
    std::function<int64_t(NativeContext&, const std::vector<int64_t>&)>;

class NativeRegistry {
 public:
  void register_native(const std::string& name, NativeFn fn) {
    fns_[name] = std::move(fn);
  }

  const NativeFn* find(const std::string& name) const {
    auto it = fns_.find(name);
    return it == fns_.end() ? nullptr : &it->second;
  }

 private:
  std::map<std::string, NativeFn> fns_;
};

}  // namespace dejavu::vm

// VM construction, boot, class loading, metadata reification, GC roots.
#include <algorithm>
#include <cstdio>
#include <functional>

#include "src/bytecode/verifier.hpp"
#include "src/common/io.hpp"
#include "src/vm/boot_image.hpp"
#include "src/vm/vm.hpp"

namespace dejavu::vm {

using bytecode::ValueType;
using heap::Addr;
using threads::Tid;

Vm::Vm(bytecode::Program program, VmOptions options, Environment& env,
       threads::TimerSource& timer, ExecHooks* hooks,
       const NativeRegistry* natives)
    : prog_(std::move(program)),
      opts_(options),
      env_(env),
      timer_(timer),
      hooks_(hooks),
      natives_(natives) {
  bytecode::verify_program(prog_);
  register_builtin_types();
  heap_ = std::make_unique<heap::Heap>(types_, opts_.heap);
  threads_ = std::make_unique<threads::ThreadPackage>(
      [this] { return nd(NdKind::kClock, env_.clock_ms()); },
      [this] { env_.idle(); }, opts_.lanes == 0 ? 1 : opts_.lanes);
  build_runtime_classes();
  contexts_.resize(1);  // slot 0 = kNoThread
}

Vm::~Vm() = default;

void Vm::register_builtin_types() {
  auto reg = [&](const std::string& name, std::vector<bool> refs) {
    heap::TypeInfo ti;
    ti.name = name;
    ti.num_slots = uint32_t(refs.size());
    ti.ref_slot = std::move(refs);
    return types_.register_type(std::move(ti));
  };
  uint32_t id;
  id = reg("String", {true});
  DV_CHECK(id == kTypeString);
  id = reg("Thread", {true, false, true});
  DV_CHECK(id == kTypeThread);
  id = reg("VM_Class", {true, true, true, true, false});
  DV_CHECK(id == kTypeVmClass);
  id = reg("VM_Method", {true, true, true, false});
  DV_CHECK(id == kTypeVmMethod);
  id = reg("VM_Registry", {true, false, true, true, false});
  DV_CHECK(id == kTypeVmRegistry);
}

void Vm::build_runtime_classes() {
  for (const auto& cd : prog_.classes) {
    auto rc = std::make_unique<RuntimeClass>();
    rc->def = &cd;
    rc->name = cd.name;
    for (const auto& md : cd.methods) {
      auto cm = std::make_unique<CompiledMethod>();
      cm->owner = rc.get();
      cm->def = &md;
      rc->methods.push_back(std::move(cm));
    }
    classes_.push_back(std::move(rc));
  }
  // Wire supers (verify_program guarantees resolvability and acyclicity).
  for (auto& rc : classes_) {
    if (!rc->def->super.empty()) {
      RuntimeClass* sup = const_cast<RuntimeClass*>(
          runtime_class(rc->def->super));
      DV_CHECK(sup != nullptr);
      rc->super = sup;
    }
  }
  for (auto& rc : classes_) compute_layouts(*rc);
  build_vtables();
}

void Vm::compute_layouts(RuntimeClass& rc) {
  if (!rc.layout.empty() || !rc.field_slot.empty()) return;  // memoized
  if (rc.super != nullptr) {
    compute_layouts(*rc.super);
    rc.layout = rc.super->layout;
    rc.field_slot = rc.super->field_slot;
  }
  if (rc.def != nullptr) {
    for (const auto& f : rc.def->fields) {
      DV_CHECK_MSG(rc.field_slot.find(f.name) == rc.field_slot.end(),
                   "field " << f.name << " shadows a superclass field in "
                            << rc.name);
      rc.field_slot[f.name] = uint32_t(rc.layout.size());
      rc.layout.push_back(FieldSlot{f.name, f.type});
    }
    // Statics are per-defining-class (not inherited into the record).
    for (const auto& f : rc.def->statics) {
      rc.static_slot[f.name] = uint32_t(rc.statics_layout.size());
      rc.statics_layout.push_back(FieldSlot{f.name, f.type});
    }
  }
}

void Vm::build_vtables() {
  // Process in hierarchy order: repeat until all done (tiny class counts).
  std::vector<RuntimeClass*> order;
  std::function<void(RuntimeClass*)> visit = [&](RuntimeClass* rc) {
    if (std::find(order.begin(), order.end(), rc) != order.end()) return;
    if (rc->super != nullptr) visit(rc->super);
    order.push_back(rc);
  };
  for (auto& rc : classes_) visit(rc.get());
  for (RuntimeClass* rc : order) {
    if (rc->super != nullptr) rc->vtable = rc->super->vtable;
    for (auto& m : rc->methods) {
      if (m->def->is_virtual) rc->vtable[m->def->name] = m.get();
    }
  }
}

const RuntimeClass* Vm::runtime_class(const std::string& name) const {
  for (const auto& rc : classes_) {
    if (rc->name == name) return rc.get();
  }
  return nullptr;
}

const RuntimeClass* Vm::runtime_class_by_type_id(uint32_t type_id) const {
  size_t idx = type_id;
  if (idx >= by_type_id_.size()) return nullptr;
  return by_type_id_[idx];
}

// ------------------------------------------------------------------- boot

void Vm::wire_observers() {
  heap_->set_root_provider(this);
  heap_->set_gc_observer([this](uint64_t idx, uint64_t live) {
    audit_.append(AuditKind::kGc,
                  "gc#" + std::to_string(idx) + " live=" +
                      std::to_string(live),
                  instr_count_);
  });
  if (hooks_ != nullptr && hooks_->wants_memory_events()) {
    heap_->set_move_observer([this](heap::Addr from, heap::Addr to) {
      hooks_->on_heap_move(from, to);
    });
  }
  threads_->set_switch_observer(
      [this](Tid from, Tid to, threads::SwitchReason reason) {
        switch_hash_.update_u32(uint32_t(from));
        switch_hash_.update_u32(uint32_t(to));
        switch_hash_.update_u32(uint32_t(reason));
        switch_trace_.push_back(uint8_t(reason));
        switch_trace_.push_back(uint8_t(to));
        if (hooks_ != nullptr) hooks_->on_switch(from, to, reason);
      });
  threads_->set_cross_lane_observer([this](const threads::CrossLaneEvent& e) {
    // Cross-lane edges fold into the switch hash: the audit-grade identity
    // for "same interleaving" must also pin the inter-lane order.
    switch_hash_.update_u32(uint32_t(e.kind));
    switch_hash_.update_u32(uint32_t(e.from));
    switch_hash_.update_u32(uint32_t(e.to));
    if (hooks_ != nullptr) hooks_->on_cross_lane(e);
  });
}

void Vm::boot() {
  DV_CHECK_MSG(!booted_, "Vm::boot called twice");
  wire_observers();

  // Boot registry + tables (the "boot image" root).
  {
    TempRoots tr(*this);
    size_t h_class = tr.add(galloc_array_ref(16));
    size_t h_intern =
        tr.add(galloc_array_ref(std::max<size_t>(prog_.pool.strings.size(), 1)));
    size_t h_threads = tr.add(galloc_array_ref(8));
    uint64_t reg = galloc_object(kTypeVmRegistry);
    heap_->set_field_ref(Addr(reg), kRegClassTable, Addr(tr.get(h_class)));
    heap_->set_field_ref(Addr(reg), kRegInternTable, Addr(tr.get(h_intern)));
    heap_->set_field_ref(Addr(reg), kRegThreadTable, Addr(tr.get(h_threads)));
    registry_obj_ = reg;
  }
  pool_string_cache_.assign(prog_.pool.strings.size(), 0);

  // DejaVu initialization runs before the application starts (§2.4).
  if (hooks_ != nullptr) hooks_->attach(*this);

  // Load the main class and start the main thread.
  RuntimeClass* mainc = const_cast<RuntimeClass*>(
      runtime_class(prog_.main.class_name));
  DV_CHECK(mainc != nullptr);
  ensure_loaded(mainc);
  std::string def_cls;
  bytecode::resolve_method_def(prog_, prog_.main.class_name,
                               prog_.main.method_name, &def_cls);
  RuntimeClass* defc =
      const_cast<RuntimeClass*>(runtime_class(def_cls));
  CompiledMethod* mainm = defc->find_method(prog_.main.method_name);
  DV_CHECK(mainm != nullptr);
  ensure_loaded(defc);
  ensure_compiled(mainm);
  spawn_thread(mainm, 0, "main");

  booted_ = true;
}

// -------------------------------------------------------- class loading

RuntimeClass* Vm::ensure_loaded(RuntimeClass* rc) {
  if (rc->loaded) return rc;
  if (rc->super != nullptr) ensure_loaded(rc->super);

  // Register the instance type.
  heap::TypeInfo ti;
  ti.name = rc->name;
  ti.num_slots = uint32_t(rc->layout.size());
  for (const auto& f : rc->layout)
    ti.ref_slot.push_back(f.type == ValueType::kRef);
  rc->instance_type_id = types_.register_type(std::move(ti));

  // Register the statics record type.
  heap::TypeInfo st;
  st.name = "<statics:" + rc->name + ">";
  st.num_slots = uint32_t(rc->statics_layout.size());
  for (const auto& f : rc->statics_layout)
    st.ref_slot.push_back(f.type == ValueType::kRef);
  rc->statics_type_id = types_.register_type(std::move(st));

  if (by_type_id_.size() <= rc->statics_type_id)
    by_type_id_.resize(rc->statics_type_id + 1, nullptr);
  by_type_id_[rc->instance_type_id] = rc;

  // Loading allocates: the statics record and the reified metadata (§2.4
  // notes class loading "usually involves allocating new heap objects",
  // which is why DejaVu must keep it symmetric).
  rc->statics_obj = galloc_object(rc->statics_type_id);
  rc->metadata_obj = make_metadata_for(*rc);
  append_to_table(kRegClassTable, kRegClassCount, rc->metadata_obj);

  rc->loaded = true;
  audit_.append(AuditKind::kClassLoad, rc->name, instr_count_);
  return rc;
}

uint64_t Vm::make_metadata_for(RuntimeClass& rc) {
  TempRoots tr(*this);
  size_t h_name = tr.add(make_guest_string(rc.name));
  size_t h_marr = tr.add(galloc_array_ref(rc.methods.size()));

  for (size_t i = 0; i < rc.methods.size(); ++i) {
    CompiledMethod* m = rc.methods[i].get();
    size_t h_mname = tr.add(make_guest_string(m->def->name));
    size_t h_lines = tr.add(galloc_array_i64(m->def->code.size()));
    for (size_t pc = 0; pc < m->def->code.size(); ++pc)
      heap_->set_array_i64(Addr(tr.get(h_lines)), pc, m->def->code[pc].line);
    uint64_t mo = galloc_object(kTypeVmMethod);
    heap_->set_field_ref(Addr(mo), kVmMethodName, Addr(tr.get(h_mname)));
    heap_->set_field_ref(Addr(mo), kVmMethodLineTable, Addr(tr.get(h_lines)));
    heap_->set_field_i64(Addr(mo), kVmMethodCodeLength,
                         int64_t(m->def->code.size()));
    heap_->set_array_ref(Addr(tr.get(h_marr)), i, Addr(mo));
    // The CompiledMethod's cached copy is root-tracked in enumerate_roots.
    m->metadata_obj = mo;
  }

  uint64_t co = galloc_object(kTypeVmClass);
  heap_->set_field_ref(Addr(co), kVmClassName, Addr(tr.get(h_name)));
  heap_->set_field_ref(Addr(co), kVmClassSuper,
                       Addr(rc.super != nullptr ? rc.super->metadata_obj : 0));
  heap_->set_field_ref(Addr(co), kVmClassMethods, Addr(tr.get(h_marr)));
  heap_->set_field_ref(Addr(co), kVmClassStatics, Addr(rc.statics_obj));
  heap_->set_field_i64(Addr(co), kVmClassClassId,
                       int64_t(rc.instance_type_id));
  // Back-link owner on each VM_Method.
  uint64_t marr = tr.get(h_marr);
  for (size_t i = 0; i < rc.methods.size(); ++i) {
    heap_->set_field_ref(heap_->array_ref(Addr(marr), i), kVmMethodOwner,
                         Addr(co));
  }
  return co;
}

void Vm::append_to_table(uint32_t table_slot, uint32_t count_slot,
                         uint64_t value) {
  TempRoots tr(*this);
  size_t h_val = tr.add(value);
  Addr reg = Addr(registry_obj_);
  Addr table = heap_->field_ref(reg, table_slot);
  uint64_t count = uint64_t(heap_->field_i64(reg, count_slot));
  uint64_t cap = heap_->array_length(table);
  if (count == cap) {
    uint64_t bigger = galloc_array_ref(cap * 2);
    reg = Addr(registry_obj_);               // may have moved
    table = heap_->field_ref(reg, table_slot);  // re-read after GC
    for (uint64_t i = 0; i < count; ++i)
      heap_->set_array_ref(Addr(bigger), i, heap_->array_ref(table, i));
    heap_->set_field_ref(reg, table_slot, Addr(bigger));
    table = Addr(bigger);
  }
  heap_->set_array_ref(table, count, Addr(tr.get(h_val)));
  heap_->set_field_i64(Addr(registry_obj_), count_slot, int64_t(count + 1));
}

void Vm::ensure_compiled(CompiledMethod* m) {
  if (m->compiled) return;
  compile_method_body(m);
  audit_.append(AuditKind::kCompile, m->owner->name + "." + m->def->name,
                instr_count_);
}

void Vm::compile_method_body(CompiledMethod* m) {
  DV_CHECK_MSG(m->owner->def != nullptr,
               "synthetic class has no compilable methods");
  m->verified = bytecode::verify_method(prog_, *m->owner->def, *m->def);
  m->resolved.resize(m->def->code.size());
  for (size_t pc = 0; pc < m->def->code.size(); ++pc) {
    const bytecode::Instr& ins = m->def->code[pc];
    ResolvedOp& r = m->resolved[pc];
    using enum bytecode::Op;
    switch (ins.op) {
      case kGetField:
      case kPutField: {
        const bytecode::FieldRef& fr = prog_.pool.field_refs[ins.a];
        const RuntimeClass* rc = runtime_class(fr.class_name);
        DV_CHECK(rc != nullptr);
        r.slot = int32_t(rc->field_slot.at(fr.field_name));
        r.ref = rc->layout[size_t(r.slot)].type == bytecode::ValueType::kRef;
        break;
      }
      case kGetStatic:
      case kPutStatic: {
        const bytecode::FieldRef& fr = prog_.pool.field_refs[ins.a];
        std::string def_cls;
        bytecode::resolve_field_def(prog_, fr.class_name, fr.field_name,
                                    /*is_static=*/true, &def_cls);
        RuntimeClass* rc =
            const_cast<RuntimeClass*>(runtime_class(def_cls));
        DV_CHECK(rc != nullptr);
        r.cls = rc;
        r.slot = int32_t(rc->static_slot.at(fr.field_name));
        r.ref = rc->statics_layout[size_t(r.slot)].type ==
                bytecode::ValueType::kRef;
        break;
      }
      case kNew: {
        r.cls = const_cast<RuntimeClass*>(
            runtime_class(prog_.pool.class_refs[ins.a]));
        DV_CHECK(r.cls != nullptr);
        break;
      }
      case kInvokeStatic:
      case kSpawn: {
        const bytecode::MethodRef& mr = prog_.pool.method_refs[ins.a];
        std::string def_cls;
        bytecode::resolve_method_def(prog_, mr.class_name, mr.method_name,
                                     &def_cls);
        RuntimeClass* rc =
            const_cast<RuntimeClass*>(runtime_class(def_cls));
        DV_CHECK(rc != nullptr);
        r.callee = rc->find_method(mr.method_name);
        DV_CHECK(r.callee != nullptr);
        break;
      }
      default:
        break;
    }
  }
  m->compiled = true;
}

// ----------------------------------------------------- engine services

RuntimeClass* Vm::load_synthetic_class(const std::string& name,
                                       uint32_t num_static_slots) {
  DV_CHECK_MSG(runtime_class(name) == nullptr,
               "synthetic class " << name << " already exists");
  auto rcp = std::make_unique<RuntimeClass>();
  RuntimeClass* rc = rcp.get();
  rc->name = name;
  for (uint32_t i = 0; i < num_static_slots; ++i) {
    rc->static_slot["s" + std::to_string(i)] = i;
    rc->statics_layout.push_back(
        FieldSlot{"s" + std::to_string(i), ValueType::kI64});
  }
  classes_.push_back(std::move(rcp));

  heap::TypeInfo ti;
  ti.name = rc->name;
  rc->instance_type_id = types_.register_type(std::move(ti));
  heap::TypeInfo st;
  st.name = "<statics:" + rc->name + ">";
  st.num_slots = num_static_slots;
  st.ref_slot.assign(num_static_slots, false);
  rc->statics_type_id = types_.register_type(std::move(st));
  if (by_type_id_.size() <= rc->statics_type_id)
    by_type_id_.resize(rc->statics_type_id + 1, nullptr);
  by_type_id_[rc->instance_type_id] = rc;

  rc->statics_obj = galloc_object(rc->statics_type_id);
  rc->metadata_obj = make_metadata_for(*rc);
  append_to_table(kRegClassTable, kRegClassCount, rc->metadata_obj);
  rc->loaded = true;
  audit_.append(AuditKind::kClassLoad, rc->name, instr_count_);
  return rc;
}

void Vm::note_synthetic_compile(const std::string& detail) {
  audit_.append(AuditKind::kCompile, detail, instr_count_);
}

uint64_t Vm::alloc_engine_buffer(uint64_t bytes, const std::string& label) {
  uint64_t arr = galloc_array_bytes(bytes);
  audit_.append(AuditKind::kEngineAlloc,
                label + ":" + std::to_string(bytes), instr_count_);
  return arr;
}

void Vm::register_root_slot(uint64_t* slot) { engine_roots_.push_back(slot); }

void Vm::ensure_stack_headroom(uint32_t needed, bool eager,
                               uint32_t eager_threshold) {
  if (threads_->current() == threads::kNoThread) return;
  ExecContext& c = cur();
  uint32_t avail =
      c.capacity_slots > c.sp ? c.capacity_slots - c.sp : 0;
  uint32_t want = eager ? eager_threshold : needed;
  if (avail < want) grow_stack(c, c.sp + want);
}

void Vm::io_warmup(const std::string& tmp_path) {
  // Write then immediately read so both the output and the input paths are
  // exercised (= "compiled") in both modes (§2.4).
  std::vector<uint8_t> probe{0xDE, 0x1A, 0x0B, 0x0E};
  write_file(tmp_path, probe);
  std::vector<uint8_t> back = read_file(tmp_path);
  DV_CHECK(back == probe);
  std::remove(tmp_path.c_str());
  // The audit detail is deliberately path-independent: the probe path may
  // differ between record and replay (unique per engine instance), and the
  // audit digest is part of replay verification.
  audit_.append(AuditKind::kIoWarmup, "probe", instr_count_);
}

// ------------------------------------------------------- guest helpers

// Pure notification (replay-time heap analysis); never touches guest state.
void Vm::emit_alloc_event(uint64_t addr, uint32_t type_id, uint32_t slots) {
  if (hooks_ == nullptr || !hooks_->wants_memory_events()) return;
  AllocEvent e;
  e.tid = threads_->current();
  e.addr = Addr(addr);
  e.class_id = type_id;
  e.slots = slots;
  e.instr_index = instr_count_;
  hooks_->on_heap_alloc(e);
}

uint64_t Vm::galloc_object(uint32_t type_id) {
  if (opts_.gc_stress && booted_) heap_->collect();
  uint64_t a = heap_->alloc_object(type_id);
  emit_alloc_event(a, type_id, types_.info(type_id).num_slots);
  return a;
}

uint64_t Vm::galloc_array_i64(uint64_t n) {
  if (opts_.gc_stress && booted_) heap_->collect();
  uint64_t a = heap_->alloc_array_i64(n);
  emit_alloc_event(a, heap::kClassIdI64Array, uint32_t(n));
  return a;
}

uint64_t Vm::galloc_array_ref(uint64_t n) {
  if (opts_.gc_stress && booted_) heap_->collect();
  uint64_t a = heap_->alloc_array_ref(n);
  emit_alloc_event(a, heap::kClassIdRefArray, uint32_t(n));
  return a;
}

uint64_t Vm::galloc_array_bytes(uint64_t n) {
  if (opts_.gc_stress && booted_) heap_->collect();
  uint64_t a = heap_->alloc_array_bytes(n);
  emit_alloc_event(a, heap::kClassIdByteArray, uint32_t(n));
  return a;
}

uint64_t Vm::make_guest_string(const std::string& s) {
  TempRoots tr(*this);
  size_t h_bytes = tr.add(galloc_array_bytes(s.size()));
  for (size_t i = 0; i < s.size(); ++i)
    heap_->set_array_byte(Addr(tr.get(h_bytes)), i, uint8_t(s[i]));
  uint64_t str = galloc_object(kTypeString);
  heap_->set_field_ref(Addr(str), kStringChars, Addr(tr.get(h_bytes)));
  return str;
}

uint64_t Vm::intern_pool_string(int32_t pool_idx) {
  DV_CHECK(pool_idx >= 0 && size_t(pool_idx) < pool_string_cache_.size());
  if (pool_string_cache_[pool_idx] == 0) {
    uint64_t s = make_guest_string(prog_.pool.strings[pool_idx]);
    pool_string_cache_[pool_idx] = s;
    Addr intern = heap_->field_ref(Addr(registry_obj_), kRegInternTable);
    heap_->set_array_ref(intern, uint64_t(pool_idx), Addr(s));
  }
  return pool_string_cache_[pool_idx];
}

std::string Vm::read_guest_string(Addr s) const {
  DV_CHECK_MSG(s != heap::kNull, "read_guest_string(null)");
  DV_CHECK_MSG(heap_->class_of(s) == kTypeString, "not a String object");
  Addr chars = heap_->field_ref(s, kStringChars);
  uint64_t n = heap_->array_length(chars);
  std::string out(n, '\0');
  for (uint64_t i = 0; i < n; ++i)
    out[i] = char(heap_->array_byte(chars, i));
  return out;
}

size_t Vm::push_temp_root(uint64_t addr) {
  temp_roots_.push_back(addr);
  return temp_roots_.size() - 1;
}

// --------------------------------------------------------------- roots

void Vm::enumerate_roots(const std::function<void(uint64_t*)>& visit) {
  if (registry_obj_ != 0) visit(&registry_obj_);
  for (auto& v : pool_string_cache_) {
    if (v != 0) visit(&v);
  }
  // Classes are visited whether or not loading has *completed*: a class
  // mid-load (inside ensure_loaded) already holds heap references in these
  // cached slots, and a moving GC must update them.
  for (auto& rc : classes_) {
    if (rc->statics_obj != 0) visit(&rc->statics_obj);
    if (rc->metadata_obj != 0) visit(&rc->metadata_obj);
    for (auto& m : rc->methods) {
      if (m->metadata_obj != 0) visit(&m->metadata_obj);
    }
  }
  for (auto& v : temp_roots_) {
    if (v != 0) visit(&v);
  }
  for (uint64_t* slot : engine_roots_) {
    if (*slot != 0) visit(slot);
  }
  for (auto& cp : contexts_) {
    if (cp == nullptr) continue;
    ExecContext& c = *cp;
    if (c.thread_obj != 0) visit(&c.thread_obj);
    if (c.stack_array != 0) visit(&c.stack_array);
    // Exact frame scanning via the verifier's reference maps (§1,
    // "reference maps specify these locations ... at safe points").
    for (size_t fi = 0; fi < c.frames.size(); ++fi) {
      const Frame& f = c.frames[fi];
      const bytecode::RefMap& map = f.method->verified.maps[f.pc];
      uint32_t nloc = f.method->def->num_locals;
      for (uint32_t j = 0; j < nloc; ++j) {
        if (j < map.locals_ref.size() && map.locals_ref[j] &&
            c.slots[f.locals_base + j] != 0)
          visit(&c.slots[f.locals_base + j]);
      }
      uint32_t opnd_end = (fi + 1 < c.frames.size())
                              ? c.frames[fi + 1].locals_base
                              : c.sp;
      uint32_t depth = opnd_end > f.stack_base ? opnd_end - f.stack_base : 0;
      for (uint32_t j = 0; j < depth; ++j) {
        if (j < map.stack_ref.size() && map.stack_ref[j] &&
            c.slots[f.stack_base + j] != 0)
          visit(&c.slots[f.stack_base + j]);
      }
    }
  }
}

}  // namespace dejavu::vm

// Boot-image layout constants shared by the application VM and the tool VM.
//
// In the paper, the debugger's remote reflection is seeded "through the
// process of building the Jalapeño boot image" (§3.3): the tool side knows
// the address of the root VM data structure and the layouts of the VM's own
// metadata classes, because it was built from the same image. Here the
// shared knowledge is this header: the slot layouts of the reified VM
// metadata classes (VM_Registry, VM_Class, VM_Method, String, Thread) and
// the fixed order in which their type ids are registered at boot.
//
// The metadata lives in the *guest heap* -- Jalapeño is written in Java and
// its internal tables are heap objects, which is exactly what makes
// reflection-based debugging possible. The interpreter does not consult
// these objects to execute (it uses host-side structures); the class loader
// keeps them consistent, and the remote-reflection engine walks them.
#pragma once

#include <cstdint>

#include "src/heap/heap.hpp"

namespace dejavu::vm {

// Builtin metadata type ids, in boot registration order. These are
// TypeRegistry ids (>= heap::kFirstClassId) and are identical in every VM
// built from the same boot sequence.
inline constexpr uint32_t kTypeString = heap::kFirstClassId + 0;
inline constexpr uint32_t kTypeThread = heap::kFirstClassId + 1;
inline constexpr uint32_t kTypeVmClass = heap::kFirstClassId + 2;
inline constexpr uint32_t kTypeVmMethod = heap::kFirstClassId + 3;
inline constexpr uint32_t kTypeVmRegistry = heap::kFirstClassId + 4;
inline constexpr uint32_t kFirstUserTypeId = heap::kFirstClassId + 5;

// String: { chars: ref(byte[]) }
inline constexpr uint32_t kStringChars = 0;
inline constexpr uint32_t kStringSlots = 1;

// Thread: { name: ref(String), tid: i64, stack: ref(byte[]) }
inline constexpr uint32_t kThreadName = 0;
inline constexpr uint32_t kThreadTid = 1;
inline constexpr uint32_t kThreadStack = 2;
inline constexpr uint32_t kThreadSlots = 3;

// VM_Class: { name: ref(String), super: ref(VM_Class),
//             methods: ref(ref[] of VM_Method), statics: ref,
//             classId: i64 }
inline constexpr uint32_t kVmClassName = 0;
inline constexpr uint32_t kVmClassSuper = 1;
inline constexpr uint32_t kVmClassMethods = 2;
inline constexpr uint32_t kVmClassStatics = 3;
inline constexpr uint32_t kVmClassClassId = 4;
inline constexpr uint32_t kVmClassSlots = 5;

// VM_Method: { name: ref(String), owner: ref(VM_Class),
//              lineTable: ref(i64[]), codeLength: i64 }
inline constexpr uint32_t kVmMethodName = 0;
inline constexpr uint32_t kVmMethodOwner = 1;
inline constexpr uint32_t kVmMethodLineTable = 2;
inline constexpr uint32_t kVmMethodCodeLength = 3;
inline constexpr uint32_t kVmMethodSlots = 4;

// VM_Registry (the boot root): { classTable: ref(ref[]), classCount: i64,
//                                internTable: ref(ref[]),
//                                threadTable: ref(ref[]), threadCount: i64 }
inline constexpr uint32_t kRegClassTable = 0;
inline constexpr uint32_t kRegClassCount = 1;
inline constexpr uint32_t kRegInternTable = 2;
inline constexpr uint32_t kRegThreadTable = 3;
inline constexpr uint32_t kRegThreadCount = 4;
inline constexpr uint32_t kRegSlots = 5;

}  // namespace dejavu::vm

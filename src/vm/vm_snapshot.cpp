// Whole-VM snapshot capture/restore (the flight recorder's checkpoint).
//
// A snapshot is everything the next instruction depends on: the heap image,
// the thread package, the class/metadata tables, every execution context,
// and the running behaviour-hash accumulators. It deliberately excludes the
// O(run) host-side transcripts (guest output text, the packed switch trace,
// the audit event list): their running hashes/digests ARE the state the
// final replay verification compares, and a flight-recorder window must stay
// O(window). Derived structures (resolved operand tables, by_type_id_) are
// rebuilt rather than stored.
//
// Capture happens only at a safepoint (Vm::request_safepoint +
// ExecHooks::on_safepoint): preemption unmasked, no native in flight, no
// temporary GC roots live. Restore runs inside a Vm constructed over the
// same program and options and performs no guest allocations and no audit
// appends -- the heap already contains every object, and the audit
// accumulator is restored wholesale.
#include "src/bytecode/model.hpp"
#include "src/common/io.hpp"
#include "src/vm/vm.hpp"

namespace dejavu::vm {

namespace {
inline constexpr uint32_t kSnapshotMagic = 0x53565644;  // "DVVS"
inline constexpr uint32_t kSnapshotVersion = 1;

struct OptionsPrologue {
  uint64_t heap_bytes = 0;
  uint8_t gc_kind = 0;
  uint64_t initial_stack_slots = 0;
  uint8_t gc_stress = 0;
  uint64_t lanes = 0;
};

void write_prologue(ByteWriter& w, const VmOptions& o) {
  w.put_u32_fixed(kSnapshotMagic);
  w.put_u32_fixed(kSnapshotVersion);
  w.put_uvarint(o.heap.size_bytes);
  w.put_u8(uint8_t(o.heap.gc));
  w.put_uvarint(o.initial_stack_slots);
  w.put_u8(o.gc_stress ? 1 : 0);
  w.put_uvarint(o.lanes == 0 ? 1 : o.lanes);
}

OptionsPrologue read_prologue(ByteReader& r) {
  DV_CHECK_MSG(r.get_u32_fixed() == kSnapshotMagic, "not a VM snapshot");
  uint32_t version = r.get_u32_fixed();
  DV_CHECK_MSG(version == kSnapshotVersion,
               "VM snapshot version " << version << " unsupported");
  OptionsPrologue p;
  p.heap_bytes = r.get_uvarint();
  p.gc_kind = r.get_u8();
  p.initial_stack_slots = r.get_uvarint();
  p.gc_stress = r.get_u8();
  p.lanes = r.get_uvarint();
  return p;
}
}  // namespace

VmOptions Vm::peek_snapshot_options(const std::vector<uint8_t>& snapshot) {
  ByteReader r(snapshot);
  OptionsPrologue p = read_prologue(r);
  VmOptions o;
  o.heap.size_bytes = size_t(p.heap_bytes);
  o.heap.gc = heap::GcKind(p.gc_kind);
  o.initial_stack_slots = uint32_t(p.initial_stack_slots);
  o.gc_stress = p.gc_stress != 0;
  o.lanes = uint32_t(p.lanes);
  return o;
}

void Vm::capture_snapshot(ByteWriter& w) const {
  DV_CHECK_MSG(mask_depth_ == 0, "snapshot under preemption mask");
  DV_CHECK_MSG(temp_roots_.empty(), "snapshot with live temp roots");
  write_prologue(w, opts_);

  // Execution counters and running behaviour hashes.
  w.put_uvarint(instr_count_);
  w.put_uvarint(yield_points_);
  w.put_uvarint(preempt_count_);
  w.put_u64_fixed(out_hash_.state());
  w.put_u64_fixed(switch_hash_.state());

  types_.serialize(w);
  heap_->serialize(w);
  threads_->serialize(w);
  audit_.serialize(w);

  // Class table. Program classes exist from construction; only their
  // mutable load/compile state is stored. Synthetic classes (the engine's
  // own, loaded through load_synthetic_class) are recreated host-side on
  // restore -- their heap objects and type-registry entries are already in
  // the restored heap/registry.
  size_t program_classes = prog_.classes.size();
  w.put_uvarint(classes_.size());
  w.put_uvarint(program_classes);
  for (const auto& rc : classes_) {
    bool synthetic = rc->def == nullptr;
    w.put_u8(synthetic ? 1 : 0);
    if (synthetic) {
      w.put_string(rc->name);
      w.put_uvarint(rc->statics_layout.size());
    }
    w.put_u8(rc->loaded ? 1 : 0);
    w.put_uvarint(rc->instance_type_id);
    w.put_uvarint(rc->statics_type_id);
    w.put_uvarint(rc->statics_obj);
    w.put_uvarint(rc->metadata_obj);
    w.put_uvarint(rc->methods.size());
    for (const auto& m : rc->methods) {
      w.put_u8(m->compiled ? 1 : 0);
      w.put_uvarint(m->metadata_obj);
    }
  }

  w.put_uvarint(registry_obj_);
  w.put_uvarint(pool_string_cache_.size());
  for (uint64_t v : pool_string_cache_) w.put_uvarint(v);

  // Execution contexts. Frames name their method by (owner class, method);
  // slot arrays are stored whole (they are O(stack), not O(run)).
  w.put_uvarint(contexts_.size());
  for (const auto& cp : contexts_) {
    w.put_u8(cp != nullptr ? 1 : 0);
    if (cp == nullptr) continue;
    const ExecContext& c = *cp;
    w.put_uvarint(c.tid);
    w.put_uvarint(c.capacity_slots);
    w.put_uvarint(c.sp);
    w.put_u8(c.op_phase);
    w.put_u8(c.pending_prologue ? 1 : 0);
    w.put_uvarint(c.thread_obj);
    w.put_uvarint(c.stack_array);
    w.put_uvarint(c.slots.size());
    for (uint64_t s : c.slots) w.put_u64_fixed(s);
    w.put_uvarint(c.frames.size());
    for (const Frame& f : c.frames) {
      w.put_string(f.method->owner->name);
      w.put_string(f.method->def->name);
      w.put_uvarint(f.pc);
      w.put_uvarint(f.locals_base);
      w.put_uvarint(f.stack_base);
    }
  }
}

void Vm::restore_snapshot(ByteReader& r) {
  OptionsPrologue p = read_prologue(r);
  DV_CHECK_MSG(p.heap_bytes == opts_.heap.size_bytes &&
                   heap::GcKind(p.gc_kind) == opts_.heap.gc,
               "snapshot heap configuration mismatch");
  DV_CHECK_MSG(uint32_t(p.initial_stack_slots) == opts_.initial_stack_slots,
               "snapshot stack configuration mismatch");
  DV_CHECK_MSG((p.gc_stress != 0) == opts_.gc_stress,
               "snapshot gc_stress mismatch");
  DV_CHECK_MSG(uint32_t(p.lanes) == (opts_.lanes == 0 ? 1 : opts_.lanes),
               "snapshot lane count mismatch");

  instr_count_ = r.get_uvarint();
  yield_points_ = r.get_uvarint();
  preempt_count_ = r.get_uvarint();
  out_hash_.set_state(r.get_u64_fixed());
  switch_hash_.set_state(r.get_u64_fixed());
  out_.clear();
  switch_trace_.clear();

  types_.restore(r);
  heap_->restore(r);
  threads_->restore(r);
  audit_.restore(r);

  size_t total_classes = size_t(r.get_uvarint());
  size_t program_classes = size_t(r.get_uvarint());
  DV_CHECK_MSG(program_classes == prog_.classes.size(),
               "snapshot program class count mismatch");
  DV_CHECK_MSG(classes_.size() == program_classes,
               "restore_snapshot into a VM with synthetic classes");
  by_type_id_.clear();
  for (size_t i = 0; i < total_classes; ++i) {
    bool synthetic = r.get_u8() != 0;
    RuntimeClass* rc = nullptr;
    if (synthetic) {
      DV_CHECK_MSG(i >= program_classes, "synthetic class out of order");
      // Recreate host-side only: no type registration (the registry was
      // restored wholesale), no allocation (the heap already holds the
      // statics/metadata objects), no audit append (accumulator restored).
      auto rcp = std::make_unique<RuntimeClass>();
      rc = rcp.get();
      rc->name = r.get_string();
      size_t nslots = size_t(r.get_uvarint());
      for (uint32_t s = 0; s < nslots; ++s) {
        rc->static_slot["s" + std::to_string(s)] = s;
        rc->statics_layout.push_back(
            FieldSlot{"s" + std::to_string(s), bytecode::ValueType::kI64});
      }
      classes_.push_back(std::move(rcp));
    } else {
      DV_CHECK_MSG(i < program_classes, "program class out of order");
      rc = classes_[i].get();
    }
    rc->loaded = r.get_u8() != 0;
    rc->instance_type_id = uint32_t(r.get_uvarint());
    rc->statics_type_id = uint32_t(r.get_uvarint());
    rc->statics_obj = r.get_uvarint();
    rc->metadata_obj = r.get_uvarint();
    size_t nmethods = size_t(r.get_uvarint());
    DV_CHECK_MSG(nmethods == rc->methods.size(),
                 "snapshot method count mismatch in " << rc->name);
    for (auto& m : rc->methods) {
      bool compiled = r.get_u8() != 0;
      m->metadata_obj = r.get_uvarint();
      if (compiled && !m->compiled) compile_method_body(m.get());
    }
    if (rc->loaded || synthetic) {
      if (by_type_id_.size() <= rc->statics_type_id)
        by_type_id_.resize(size_t(rc->statics_type_id) + 1, nullptr);
      by_type_id_[rc->instance_type_id] = rc;
    }
  }

  registry_obj_ = r.get_uvarint();
  pool_string_cache_.assign(size_t(r.get_uvarint()), 0);
  DV_CHECK_MSG(pool_string_cache_.size() == prog_.pool.strings.size(),
               "snapshot string pool size mismatch");
  for (uint64_t& v : pool_string_cache_) v = r.get_uvarint();

  size_t ncontexts = size_t(r.get_uvarint());
  contexts_.clear();
  contexts_.resize(ncontexts);
  for (size_t i = 0; i < ncontexts; ++i) {
    if (r.get_u8() == 0) continue;
    auto cp = std::make_unique<ExecContext>();
    ExecContext& c = *cp;
    c.tid = threads::Tid(r.get_uvarint());
    DV_CHECK_MSG(c.tid == i, "snapshot context tid mismatch");
    c.capacity_slots = uint32_t(r.get_uvarint());
    c.sp = uint32_t(r.get_uvarint());
    c.op_phase = r.get_u8();
    c.pending_prologue = r.get_u8() != 0;
    c.thread_obj = r.get_uvarint();
    c.stack_array = r.get_uvarint();
    c.slots.resize(size_t(r.get_uvarint()));
    for (uint64_t& s : c.slots) s = r.get_u64_fixed();
    size_t nframes = size_t(r.get_uvarint());
    for (size_t fi = 0; fi < nframes; ++fi) {
      Frame f;
      std::string owner = r.get_string();
      std::string mname = r.get_string();
      const RuntimeClass* orc = runtime_class(owner);
      DV_CHECK_MSG(orc != nullptr, "snapshot frame class " << owner);
      f.method = orc->find_method(mname);
      DV_CHECK_MSG(f.method != nullptr && f.method->compiled,
                   "snapshot frame method " << owner << "." << mname);
      f.pc = uint32_t(r.get_uvarint());
      f.locals_base = uint32_t(r.get_uvarint());
      f.stack_base = uint32_t(r.get_uvarint());
      c.frames.push_back(f);
    }
    contexts_[i] = std::move(cp);
  }

  mask_depth_ = 0;
  temp_roots_.clear();
  halted_ = false;
  finished_ = false;
  stopped_at_probe_ = false;
  safepoint_requested_ = false;
}

void Vm::boot_from_snapshot(const std::vector<uint8_t>& snapshot) {
  DV_CHECK_MSG(!booted_, "boot_from_snapshot on a booted VM");
  wire_observers();
  ByteReader r(snapshot);
  restore_snapshot(r);
  DV_CHECK_MSG(r.at_end(), "trailing bytes in VM snapshot");
  // The hooks attach AFTER restore so a resuming engine sees the restored
  // machine (it re-registers its buffer root slots instead of allocating).
  if (hooks_ != nullptr) hooks_->attach(*this);
  booted_ = true;
}

}  // namespace dejavu::vm

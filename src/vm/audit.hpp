// The side-effect audit log (symmetry verification, property P3).
//
// The paper's symmetric-instrumentation discipline (§2.4) demands that every
// side effect of DejaVu that could influence the VM -- object allocation,
// class loading, method compilation, stack overflow/growth, I/O warm-up --
// happens identically in record and replay. The audit log gives those side
// effects an observable identity: the VM appends an event (with the guest
// instruction count at which it occurred) for each one, and tests plus the
// symmetry-ablation experiment compare the logs of a record run and its
// replay. Any asymmetry shows up as the first differing event.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/hash.hpp"

namespace dejavu::vm {

enum class AuditKind : uint8_t {
  kClassLoad,
  kCompile,
  kStackGrow,
  kGc,
  kIoWarmup,
  kIoFlush,
  kThreadCreate,
  kEngineAlloc,  // guest allocations made by the replay engine itself
};

const char* audit_kind_name(AuditKind k);

struct AuditEvent {
  AuditKind kind;
  std::string detail;
  uint64_t instr;  // guest instruction count at the event

  bool operator==(const AuditEvent&) const = default;
};

class AuditLog {
 public:
  void append(AuditKind kind, std::string detail, uint64_t instr) {
    events_.push_back(AuditEvent{kind, std::move(detail), instr});
  }

  const std::vector<AuditEvent>& events() const { return events_; }

  size_t count(AuditKind k) const {
    size_t n = 0;
    for (const auto& e : events_) n += (e.kind == k) ? 1 : 0;
    return n;
  }

  uint64_t digest() const {
    Fnv1a h;
    for (const auto& e : events_) {
      h.update_u32(uint32_t(e.kind));
      h.update_str(e.detail);
      h.update_u64(e.instr);
    }
    return h.digest();
  }

  // Index of the first event differing from `other` (or the shorter length
  // if one is a prefix of the other); SIZE_MAX if identical.
  size_t first_divergence(const AuditLog& other) const {
    size_t n = std::min(events_.size(), other.events_.size());
    for (size_t i = 0; i < n; ++i) {
      if (!(events_[i] == other.events_[i])) return i;
    }
    if (events_.size() != other.events_.size()) return n;
    return SIZE_MAX;
  }

  std::string describe(size_t index) const;

 private:
  std::vector<AuditEvent> events_;
};

}  // namespace dejavu::vm

// The side-effect audit log (symmetry verification, property P3).
//
// The paper's symmetric-instrumentation discipline (§2.4) demands that every
// side effect of DejaVu that could influence the VM -- object allocation,
// class loading, method compilation, stack overflow/growth, I/O warm-up --
// happens identically in record and replay. The audit log gives those side
// effects an observable identity: the VM appends an event (with the guest
// instruction count at which it occurred) for each one, and tests plus the
// symmetry-ablation experiment compare the logs of a record run and its
// replay. Any asymmetry shows up as the first differing event.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/hash.hpp"
#include "src/common/io.hpp"

namespace dejavu::vm {

enum class AuditKind : uint8_t {
  kClassLoad,
  kCompile,
  kStackGrow,
  kGc,
  kIoWarmup,
  kIoFlush,
  kThreadCreate,
  kEngineAlloc,  // guest allocations made by the replay engine itself
};

const char* audit_kind_name(AuditKind k);

struct AuditEvent {
  AuditKind kind;
  std::string detail;
  uint64_t instr;  // guest instruction count at the event

  bool operator==(const AuditEvent&) const = default;
};

inline constexpr size_t kAuditKindCount = 8;

class AuditLog {
 public:
  void append(AuditKind kind, std::string detail, uint64_t instr) {
    // The digest is maintained incrementally (same update sequence as the
    // historical per-call recomputation, so digests are unchanged) because
    // checkpoints persist the accumulator without the O(run) event list.
    running_.update_u32(uint32_t(kind));
    running_.update_str(detail);
    running_.update_u64(instr);
    counts_[size_t(kind)]++;
    total_++;
    events_.push_back(AuditEvent{kind, std::move(detail), instr});
  }

  const std::vector<AuditEvent>& events() const { return events_; }

  size_t count(AuditKind k) const { return counts_[size_t(k)]; }
  uint64_t total() const { return total_; }

  uint64_t digest() const { return running_.digest(); }

  // Checkpoint support: only the digest accumulator and the per-kind
  // counters round-trip; the event list is observability sugar and would be
  // O(run) in a flight-recorder window.
  void serialize(ByteWriter& w) const {
    w.put_u64_fixed(running_.state());
    w.put_uvarint(total_);
    for (uint64_t c : counts_) w.put_uvarint(c);
  }

  void restore(ByteReader& r) {
    running_.set_state(r.get_u64_fixed());
    total_ = r.get_uvarint();
    for (uint64_t& c : counts_) c = r.get_uvarint();
    events_.clear();
  }

  // Index of the first event differing from `other` (or the shorter length
  // if one is a prefix of the other); SIZE_MAX if identical.
  size_t first_divergence(const AuditLog& other) const {
    size_t n = std::min(events_.size(), other.events_.size());
    for (size_t i = 0; i < n; ++i) {
      if (!(events_[i] == other.events_[i])) return i;
    }
    if (events_.size() != other.events_.size()) return n;
    return SIZE_MAX;
  }

  std::string describe(size_t index) const;

 private:
  std::vector<AuditEvent> events_;
  Fnv1a running_;
  uint64_t counts_[kAuditKindCount] = {};
  uint64_t total_ = 0;
};

}  // namespace dejavu::vm

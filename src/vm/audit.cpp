#include "src/vm/audit.hpp"

#include <sstream>

namespace dejavu::vm {

const char* audit_kind_name(AuditKind k) {
  switch (k) {
    case AuditKind::kClassLoad: return "class_load";
    case AuditKind::kCompile: return "compile";
    case AuditKind::kStackGrow: return "stack_grow";
    case AuditKind::kGc: return "gc";
    case AuditKind::kIoWarmup: return "io_warmup";
    case AuditKind::kIoFlush: return "io_flush";
    case AuditKind::kThreadCreate: return "thread_create";
    case AuditKind::kEngineAlloc: return "engine_alloc";
  }
  return "?";
}

std::string AuditLog::describe(size_t index) const {
  if (index >= events_.size()) return "<past end of audit log>";
  const AuditEvent& e = events_[index];
  std::ostringstream os;
  os << "#" << index << " " << audit_kind_name(e.kind) << "(" << e.detail
     << ") @instr " << e.instr;
  return os.str();
}

}  // namespace dejavu::vm

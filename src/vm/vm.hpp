// The virtual machine (the Jalapeño stand-in).
//
// One Vm is one "application JVM": a guest heap, a lazy class loader with
// reified in-heap metadata, a compile-at-first-invocation execution engine,
// and the quasi-preemptive green-thread package. An ExecHooks installed at
// construction receives the instrumentation events that a replay strategy
// needs (yield points, non-deterministic values, native-call traffic); with
// no hooks the VM runs "uninstrumented", which is the baseline for the
// overhead experiment (E2).
//
// The Vm is also a heap::RootProvider: GC roots are the boot registry, the
// per-class cached metadata/statics addresses, every live frame's reference
// slots (via the verifier's reference maps -- type-accurate collection), and
// any engine-registered slots (DejaVu's pre-allocated trace buffers).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/bytecode/model.hpp"
#include "src/heap/heap.hpp"
#include "src/threads/thread_package.hpp"
#include "src/threads/timer.hpp"
#include "src/vm/audit.hpp"
#include "src/vm/env.hpp"
#include "src/vm/hooks.hpp"
#include "src/vm/natives.hpp"
#include "src/vm/runtime.hpp"

namespace dejavu::vm {

struct VmOptions {
  heap::HeapConfig heap;
  uint32_t initial_stack_slots = 512;
  bool gc_stress = false;      // collect before every allocation (testing)
  bool echo_output = false;    // mirror guest output to stdout
  uint64_t max_instructions = 4'000'000'000ull;  // runaway guard
  // Scheduler lanes (src/threads/lane.hpp). 1 = the paper's uniprocessor;
  // K>1 partitions threads across K per-lane run queues and surfaces
  // cross-lane interactions through ExecHooks::on_cross_lane.
  uint32_t lanes = 1;
};

class Vm : public heap::RootProvider {
 public:
  // The program is copied: a Vm owns its program for its whole lifetime
  // (callers may pass temporaries; the tool/application VM pair in the
  // debugger holds two independent copies, like two JVMs loading the same
  // classes).
  Vm(bytecode::Program program, VmOptions options, Environment& env,
     threads::TimerSource& timer, ExecHooks* hooks = nullptr,
     const NativeRegistry* natives = nullptr);
  ~Vm() override;

  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  // ---- whole-run execution ---------------------------------------------
  // boot + run to completion + finish.
  void run();

  // ---- incremental execution (the debugger drives a replaying VM) -------
  void boot();
  bool booted() const { return booted_; }
  bool finished() const { return finished_; }
  // Executes up to `max_instr` guest instructions (crossing thread
  // switches); returns the number executed. Stops early at the end of the
  // program or when the instruction probe fires.
  uint64_t step(uint64_t max_instr);
  // Executes exactly one instruction, ignoring the probe (debugger stepi).
  bool step_one();
  void finish();

  // ---- checkpoint / snapshot (flight recorder) --------------------------
  // Arms a safepoint: at the next instruction-loop top (preemption
  // unmasked, no native in flight) the hooks' on_safepoint fires once.
  // Host-side only -- the guest observes nothing.
  void request_safepoint() { safepoint_requested_ = true; }
  // Serializes the complete guest-visible machine state (heap image, thread
  // package, class/metadata tables, execution contexts, behaviour-hash
  // accumulators, audit digest) so a fresh Vm built over the same program
  // and options can continue the identical execution. Host-side transcripts
  // (out_ text, switch_trace_) are excluded: only their running hashes are
  // state. Must be called at a safepoint (mask_depth_ == 0, no temp roots).
  void capture_snapshot(ByteWriter& w) const;
  // In-place restore into a booted-from-snapshot Vm. Checked against the
  // program fingerprint and the construction options.
  void restore_snapshot(ByteReader& r);
  // boot() replacement for resuming from a snapshot: wires the observers
  // exactly as boot() does, restores the snapshot, then attaches the hooks
  // (which must perform a resume-style attach, not a fresh one).
  void boot_from_snapshot(const std::vector<uint8_t>& snapshot);
  // Reads just the options prologue of a snapshot blob so a session can
  // construct the resuming Vm with matching heap/lane/stack configuration.
  static VmOptions peek_snapshot_options(const std::vector<uint8_t>& snapshot);
  const VmOptions& options() const { return opts_; }

  // Host-side observation point, checked before each instruction when set.
  // Returning true pauses execution (this perturbs nothing in the guest).
  using InstructionProbe = std::function<bool(Vm&, const FrameView&)>;
  void set_instruction_probe(InstructionProbe probe) {
    probe_ = std::move(probe);
  }
  bool stopped_at_probe() const { return stopped_at_probe_; }

  // ---- observable behaviour ----------------------------------------------
  BehaviorSummary summary() const;
  const std::string& output() const { return out_; }
  uint64_t instr_count() const { return instr_count_; }
  uint64_t live_yield_points() const { return yield_points_; }
  uint64_t preempt_count() const { return preempt_count_; }
  const std::vector<uint8_t>& switch_trace() const { return switch_trace_; }

  // ---- components ---------------------------------------------------------
  heap::Heap& guest_heap() { return *heap_; }
  const heap::Heap& guest_heap() const { return *heap_; }
  threads::ThreadPackage& thread_package() { return *threads_; }
  const threads::ThreadPackage& thread_package() const { return *threads_; }
  AuditLog& audit() { return audit_; }
  const AuditLog& audit() const { return audit_; }
  const bytecode::Program& program() const { return prog_; }
  const heap::TypeRegistry& types() const { return types_; }

  // ---- class/metadata lookup (debugger, remote reflection) ---------------
  const RuntimeClass* runtime_class(const std::string& name) const;
  const RuntimeClass* runtime_class_by_type_id(uint32_t type_id) const;
  uint64_t registry_addr() const { return registry_obj_; }
  std::vector<FrameView> frames_of(threads::Tid t) const;
  FrameView current_frame_view() const;
  std::string read_guest_string(heap::Addr s) const;

  // ---- services for replay engines (§2.4 symmetry machinery) -------------
  // Loads a class that is not part of the program (the analog of DejaVu's
  // own Java classes). Goes through the normal load path: type
  // registration, statics record, metadata objects, audit event.
  RuntimeClass* load_synthetic_class(const std::string& name,
                                     uint32_t num_static_slots);
  // Audit the (modeled) compilation of an engine method.
  void note_synthetic_compile(const std::string& detail);
  // Allocates a guest byte[] on the engine's behalf (trace buffers); the
  // caller must register_root_slot the returned slot holder.
  uint64_t alloc_engine_buffer(uint64_t bytes, const std::string& label);
  // Registers an engine-owned slot holding a guest address as a GC root.
  void register_root_slot(uint64_t* slot);
  // Models the activation-stack headroom check before instrumentation runs
  // (§2.4 "Symmetry in Stack Overflow"): grows the current thread's stack
  // if fewer than `needed` slots remain -- or, when `eager`, if fewer than
  // `eager_threshold` remain (the mode-independent heuristic bound).
  void ensure_stack_headroom(uint32_t needed, bool eager,
                             uint32_t eager_threshold);
  // §2.4 "Symmetry in Loading and Compilation": write-then-read a temp file
  // so both record and replay compile both I/O paths; allocates the guest
  // I/O buffer.
  void io_warmup(const std::string& tmp_path);

  // Run a static guest method to completion on the current thread with
  // preemption masked (JNI callback regeneration). Returns its result
  // (0 for void).
  int64_t call_guest_masked(const std::string& cls, const std::string& method,
                            const std::vector<int64_t>& args);

  // Record-mode JNI callback entry (invoked via NativeContext::call_guest):
  // notifies the hooks, then runs the callback.
  int64_t native_callback_from_record(const std::string& cls,
                                      const std::string& method,
                                      const std::vector<int64_t>& args);

  // ---- RootProvider --------------------------------------------------------
  void enumerate_roots(
      const std::function<void(uint64_t* slot)>& visit) override;

 private:
  // -- boot helpers --
  void register_builtin_types();
  void build_runtime_classes();
  void compute_layouts(RuntimeClass& rc);
  void build_vtables();

  // -- class loading & compilation --
  RuntimeClass* ensure_loaded(RuntimeClass* rc);
  void ensure_compiled(CompiledMethod* m);
  // Verification + operand resolution without the kCompile audit event;
  // ensure_compiled = this + audit. Snapshot restore re-runs it silently
  // for every method recorded as compiled (resolved operand tables are
  // derived state; the audit accumulator is restored wholesale).
  void compile_method_body(CompiledMethod* m);
  // Wires observers (root provider, GC/move/switch/cross-lane) the way
  // boot() does; shared between boot() and boot_from_snapshot().
  void wire_observers();
  uint64_t make_metadata_for(RuntimeClass& rc);
  void append_to_table(uint32_t table_slot, uint32_t count_slot,
                       uint64_t value);

  // -- guest object helpers --
  uint64_t galloc_object(uint32_t type_id);
  uint64_t galloc_array_i64(uint64_t n);
  uint64_t galloc_array_ref(uint64_t n);
  uint64_t galloc_array_bytes(uint64_t n);
  uint64_t make_guest_string(const std::string& s);
  uint64_t intern_pool_string(int32_t pool_idx);
  size_t push_temp_root(uint64_t addr);

  // RAII scope for temporary GC roots: entries added here are enumerated as
  // roots (and updated by a moving collector) until the scope dies. Access
  // values through get()/set(), never through stale C++ copies.
  class TempRoots {
   public:
    explicit TempRoots(Vm& vm) : vm_(vm), base_(vm.temp_roots_.size()) {}
    ~TempRoots() { vm_.temp_roots_.resize(base_); }
    TempRoots(const TempRoots&) = delete;
    TempRoots& operator=(const TempRoots&) = delete;

    size_t add(uint64_t addr) {
      vm_.temp_roots_.push_back(addr);
      return vm_.temp_roots_.size() - 1;
    }
    uint64_t get(size_t h) const { return vm_.temp_roots_[h]; }
    void set(size_t h, uint64_t v) { vm_.temp_roots_[h] = v; }

   private:
    Vm& vm_;
    size_t base_;
  };

  // -- threads / frames --
  ExecContext& ctx(threads::Tid t);
  const ExecContext& ctx(threads::Tid t) const;
  ExecContext& cur();
  threads::Tid spawn_thread(CompiledMethod* entry, uint64_t arg,
                            const std::string& name);
  void push_frame(ExecContext& c, CompiledMethod* m,
                  const uint64_t* args, size_t nargs);
  void pop_frame_return(ExecContext& c, bool has_value, uint64_t value);
  void grow_stack(ExecContext& c, uint32_t min_capacity);
  threads::MonitorId monitor_of(heap::Addr obj);

  // -- interpretation --
  bool dispatch_if_needed();  // returns false when no live threads remain
  void execute_instruction();
  void maybe_yield_point();
  void do_invoke(CompiledMethod* callee);
  void do_native_call(const bytecode::Instr& ins);
  int64_t nd(NdKind kind, int64_t live);
  FrameView frame_view(const ExecContext& c, const Frame& f) const;
  void emit_monitor_event(MonitorOp op, threads::Tid tid,
                          threads::MonitorId mid, threads::Tid holder,
                          bool recursive, uint32_t woken);
  void emit_alloc_event(uint64_t addr, uint32_t type_id, uint32_t slots);

  // -- operand stack --
  void push_slot(uint64_t v);
  uint64_t pop_slot();
  uint64_t peek_slot(uint32_t depth_from_top = 0) const;
  void emit_output(const std::string& s);

  const bytecode::Program prog_;
  VmOptions opts_;
  Environment& env_;
  threads::TimerSource& timer_;
  ExecHooks* hooks_;
  const NativeRegistry* natives_;

  heap::TypeRegistry types_;
  std::unique_ptr<heap::Heap> heap_;
  std::unique_ptr<threads::ThreadPackage> threads_;
  AuditLog audit_;

  std::vector<std::unique_ptr<RuntimeClass>> classes_;
  std::vector<RuntimeClass*> by_type_id_;  // instance_type_id -> class
  std::vector<std::unique_ptr<ExecContext>> contexts_;  // by tid

  uint64_t registry_obj_ = 0;
  std::vector<uint64_t> pool_string_cache_;  // pool idx -> guest String addr
  std::vector<uint64_t> temp_roots_;
  std::vector<uint64_t*> engine_roots_;

  std::string out_;
  Fnv1a out_hash_;
  Fnv1a switch_hash_;
  std::vector<uint8_t> switch_trace_;  // packed (reason,tid) pairs
  uint64_t instr_count_ = 0;
  uint64_t yield_points_ = 0;
  uint64_t preempt_count_ = 0;
  uint32_t mask_depth_ = 0;  // preemption mask (native callbacks)
  bool safepoint_requested_ = false;
  bool booted_ = false;
  bool finished_ = false;
  bool halted_ = false;
  bool hooks_detached_ = false;
  bool stopped_at_probe_ = false;
  InstructionProbe probe_;
};

}  // namespace dejavu::vm

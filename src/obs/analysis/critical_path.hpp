// The critical-path / blocked-time analyzer: per-thread walls of
// instruction-clock time split into running / runnable-but-preempted /
// blocked-on-monitor / waiting, plus a cross-thread dependency walk that
// extracts the execution's critical path as an ordered segment list.
//
// Everything is measured in instruction-count units of the replayed run:
// deterministic replay makes the breakdown exact (every switch is observed,
// not sampled) and perturbation-free (the analyzer only consumes the
// engine's existing observer fan-out; it installs no hooks of its own).
//
// The dependency walk starts at the final running segment and follows, at
// each segment boundary, the edge that made the segment's thread runnable:
// a monitor hand-off (release -> contended acquire), a notify -> wait-end
// pair, a spawn, a join completion (joined thread's termination), a
// cross-lane order event, or -- when no explicit wake happened -- the
// scheduler's switch from the previously running thread. The resulting
// ordered segment list with per-method attribution answers "what chain of
// work bounded this run's length".
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/obs/analysis/analysis.hpp"
#include "src/threads/lane.hpp"

namespace dejavu::obs {

class CriticalPathAnalyzer : public AnalysisObserver {
 public:
  explicit CriticalPathAnalyzer(uint32_t top_n = 10) : top_n_(top_n) {}

  const char* name() const override { return "critpath"; }
  bool wants_instructions() const override { return true; }
  bool wants_monitors() const override { return true; }
  bool wants_threads() const override { return true; }

  void on_run_end(const RunInfo& info) override;
  void on_instruction(const vm::InstrEvent& ev) override;
  void on_monitor_event(const vm::MonitorEvent& e) override;
  void on_switch(threads::Tid from, threads::Tid to,
                 threads::SwitchReason reason, uint64_t instr_index) override;
  void on_thread_event(const vm::ThreadEvent& e) override;
  void on_cross_lane(const threads::CrossLaneEvent& e) override;

  // dejavu-critpath-v1 JSON.
  std::string artifact() const override;

  // A closed stretch of one thread running without a switch. Exposed for
  // tests.
  struct Segment {
    threads::Tid tid = threads::kNoThread;
    uint64_t start = 0;  // instr index, inclusive
    uint64_t end = 0;    // instr index, exclusive
    std::string method;  // dominant method ("Owner.method"), "" if none
  };
  const std::vector<Segment>& segments() const { return segments_; }
  // The walked critical path, chronological. Valid after on_run_end.
  const std::vector<size_t>& critical_path() const { return path_; }

 private:
  // What a thread is doing while not running; chosen by the SwitchReason
  // that parked it.
  enum class ParkKind : uint8_t { kRunnable, kBlocked, kWaiting, kDone };

  struct ThreadWall {
    uint64_t running = 0;
    uint64_t runnable = 0;   // preempted / yielded, ready to run
    uint64_t blocked = 0;    // monitorenter contention
    uint64_t waiting = 0;    // wait / sleep / join
    bool seen = false;
  };

  // The last event that made a thread runnable again; the dependency the
  // walk follows out of a segment.
  struct WakeEdge {
    const char* kind = "schedule";          // static tag
    threads::Tid from = threads::kNoThread; // waker, kNoThread = scheduler
    uint64_t subject = 0;                   // monitor id / lane / 0
    uint64_t instr = 0;                     // when the wake happened
  };

  ThreadWall& wall(threads::Tid tid);
  void park(threads::Tid tid, ParkKind kind, uint64_t at);
  void unpark(threads::Tid tid, uint64_t at);
  void close_segment(uint64_t at);
  void push_wake(threads::Tid tid, const char* kind, threads::Tid from,
                 uint64_t subject, uint64_t instr);
  void mark_parked_wake(threads::Tid tid);

  std::vector<ThreadWall> walls_;  // by tid
  // Per-thread park bookkeeping: what state the thread entered and when.
  struct Park {
    ParkKind kind = ParkKind::kRunnable;
    uint64_t since = 0;
    bool parked = false;
  };
  std::vector<Park> parks_;  // by tid

  // Segment recording for the dependency walk.
  std::vector<Segment> segments_;
  std::vector<std::vector<size_t>> by_tid_;  // tid -> indices into segments_
  threads::Tid current_ = threads::kNoThread;
  uint64_t seg_start_ = 0;
  std::map<const std::string*, uint64_t> seg_methods_;  // per-segment counts
  std::unordered_map<const std::string*, const std::string*> owners_;

  // Wake edges per thread, appended chronologically.
  std::vector<std::vector<WakeEdge>> wakes_;  // by tid
  // True while an explicit wake is newer than the thread's last switch-in;
  // suppresses the fallback "schedule" edge at the next switch-in so that
  // spawn / cross-lane wakes (which fire while the thread is parked) are
  // not shadowed by it.
  std::vector<bool> pending_explicit_;  // by tid
  // Monitor wake sources: last releaser / last notifier per monitor.
  std::unordered_map<threads::MonitorId, WakeEdge> last_release_;
  std::unordered_map<threads::MonitorId, WakeEdge> last_notify_;
  // Open parking episodes (blocked enter / wait) per thread, so the
  // matching resumption event can be dated at the segment start.
  struct ParkSite {
    threads::MonitorId monitor = 0;
    uint64_t begin = 0;
  };
  std::unordered_map<threads::Tid, ParkSite> monitor_park_;
  uint64_t resume_instr(const vm::MonitorEvent& e);

  std::vector<size_t> path_;  // critical path, indices into segments_
  // Edge kind linking path_[i] to its predecessor (size = path_.size()-1).
  std::vector<const char*> hop_kinds_;
  // Owns the "xlane:<kind>" strings the WakeEdge kind tags point into.
  std::set<std::string> xlane_kinds_;
  uint64_t switches_ = 0;
  uint32_t top_n_;
  RunInfo run_{};
};

}  // namespace dejavu::obs

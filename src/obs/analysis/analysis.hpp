// Replay-time analysis over the engine's observer fan-out.
//
// The paper's payoff (§1): once a run is captured, arbitrarily heavyweight
// observation can happen at *replay* time without perturbing the recorded
// execution. An AnalysisObserver is a host-side consumer of the fine-grained
// execution events the replaying VM emits -- per-instruction, monitor
// operations, heap traffic, nd-events, yield points and switches.
//
// The invariant: registering analyzers must not change trace consumption,
// verification outcome, or guest state. The DejaVuEngine enforces this by
// construction -- analyzers can only be registered on a replay-mode engine,
// every callback is a pure notification (heap values are passed by value,
// never by pointer), and tests/obs asserts byte-identity of replay results
// with analyzers on vs off.
#pragma once

#include <cstdint>
#include <string>

#include "src/vm/hooks.hpp"

namespace dejavu::vm {
class Vm;
}

namespace dejavu::obs {

// Handed to analyzers when the replayed run finishes.
struct RunInfo {
  uint64_t instr_count = 0;
  uint64_t logical_clock = 0;  // live yield points
  uint64_t switch_count = 0;
  bool verified = false;  // replay verification outcome
  // True when a strict replay hit a violation but carried on non-strict so
  // the analyzers could finish (SymmetryConfig::strict + analyzers). The
  // artifacts of such a run describe a post-violation execution.
  bool post_violation = false;
};

class AnalysisObserver {
 public:
  virtual ~AnalysisObserver() = default;
  virtual const char* name() const = 0;

  // Event-family subscriptions. The engine enables VM instrumentation for
  // the union of what the registered analyzers ask for; families nobody
  // wants cost nothing (the VM's wants_* predicate stays false).
  virtual bool wants_instructions() const { return false; }
  virtual bool wants_monitors() const { return false; }
  virtual bool wants_memory() const { return false; }
  virtual bool wants_threads() const { return false; }

  // Lifecycle. on_run_begin runs at engine attach (VM booted, guest not yet
  // executing); the Vm reference is only guaranteed valid until on_run_end.
  virtual void on_run_begin(const vm::Vm&) {}
  virtual void on_run_end(const RunInfo&) {}

  // Fine-grained events (all pure notifications).
  virtual void on_instruction(const vm::InstrEvent&) {}
  virtual void on_monitor_event(const vm::MonitorEvent&) {}
  virtual void on_heap_read(heap::Addr obj, uint32_t slot, int64_t value,
                            bool is_ref) {
    (void)obj; (void)slot; (void)value; (void)is_ref;
  }
  virtual void on_heap_write(heap::Addr obj, uint32_t slot, int64_t value,
                             bool is_ref) {
    (void)obj; (void)slot; (void)value; (void)is_ref;
  }
  virtual void on_heap_alloc(const vm::AllocEvent&) {}
  // The copying collector relocated an object (rides the memory
  // subscription). Analyzers tracking per-object state follow the
  // forwarding so identity stays exact across collections.
  virtual void on_heap_move(heap::Addr from, heap::Addr to) {
    (void)from; (void)to;
  }
  // `tag` is the engine's static nd-event tag ("clock", "input", ...).
  virtual void on_nd_event(const char* tag, int64_t value,
                           uint64_t logical_clock) {
    (void)tag; (void)value; (void)logical_clock;
  }
  virtual void on_yield_point(uint64_t logical_clock, bool switched) {
    (void)logical_clock; (void)switched;
  }
  virtual void on_switch(threads::Tid from, threads::Tid to,
                         threads::SwitchReason reason, uint64_t instr_index) {
    (void)from; (void)to; (void)reason; (void)instr_index;
  }
  // Thread lifecycle edges (rides the wants_threads() subscription).
  virtual void on_thread_event(const vm::ThreadEvent&) {}
  // A cross-lane order event from a multi-lane replay (always fanned; a
  // single-lane VM never emits any). The engine forwards these after its
  // own field-by-field verification.
  virtual void on_cross_lane(const threads::CrossLaneEvent&) {}

  // The analyzer's primary artifact (a JSON document), valid after
  // on_run_end.
  virtual std::string artifact() const = 0;
};

// Rendered artifacts of the built-in analyzers, carried on ReplayResult.
// Empty strings mean the corresponding analyzer was not enabled.
struct AnalysisResults {
  std::string profile_json;       // dejavu-profile-v1
  std::string profile_collapsed;  // Brendan Gregg collapsed-stack text
  std::string locks_json;         // dejavu-locks-v1
  std::string heap_json;          // dejavu-heap-v1
  std::string races_json;         // dejavu-races-v1
  std::string critpath_json;      // dejavu-critpath-v1
  std::string cachesim_json;      // dejavu-cachesim-v1

  bool any() const {
    return !profile_json.empty() || !locks_json.empty() ||
           !heap_json.empty() || !races_json.empty() ||
           !critpath_json.empty() || !cachesim_json.empty();
  }
};

}  // namespace dejavu::obs

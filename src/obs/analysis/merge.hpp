// Fleet-wide artifact mergers for the replay farm.
//
// Each merger folds any number of dejavu-{profile,locks,heap}-v1 documents
// (as produced by the analyzers in this directory) into one document of the
// same schema plus a "merged_runs" count. Merging is a pure multiset fold:
// counters sum, maxima max, first-observation indices min, verified ANDs,
// post_violation ORs -- so the result is associative and order-independent,
// and a merged document fed back into add_json() contributes exactly its
// constituents (merge-of-merged == merge-of-all). tests/farm asserts both
// properties over shuffled trace subsets.
//
// Entry lists are emitted in full (sorting is determined by the aggregate
// multiset, never truncated here); top-N selection is presentation-layer
// work done by the farm report renderer.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

namespace dejavu::obs {

class ProfileMerger {
 public:
  // Folds one dejavu-profile-v1 document (per-run or previously merged)
  // into the aggregate. Throws VmError on malformed input.
  void add_json(const std::string& json);
  // The merged dejavu-profile-v1 document.
  std::string artifact() const;
  uint64_t runs() const { return runs_; }

 private:
  // (pc, op, line) -> count. Keying by the full triple keeps the fold a
  // pure multiset sum even if two inputs disagree about a pc's opcode.
  using PcMap = std::map<std::tuple<uint64_t, std::string, int64_t>, uint64_t>;
  struct MethodAgg {
    uint64_t instructions = 0;
    uint64_t yield_points = 0;
    PcMap pcs;
  };

  std::map<std::string, MethodAgg> methods_;
  uint64_t runs_ = 0;
  uint64_t total_instructions_ = 0;
  uint64_t total_yield_points_ = 0;
  uint64_t run_instr_count_ = 0;
  uint64_t run_logical_clock_ = 0;
  bool verified_ = true;
  bool post_violation_ = false;
};

class LocksMerger {
 public:
  void add_json(const std::string& json);
  // The merged dejavu-locks-v1 document.
  std::string artifact() const;
  uint64_t runs() const { return runs_; }

 private:
  struct MonitorAgg {
    uint64_t acquires = 0;
    uint64_t recursive_acquires = 0;
    uint64_t contended_blocks = 0;
    uint64_t hold_total = 0;
    uint64_t hold_max = 0;
    uint64_t block_total = 0;
    uint64_t block_max = 0;
    uint64_t waits = 0;
    uint64_t wait_total = 0;
    uint64_t wait_max = 0;
    uint64_t notify_ops = 0;
    uint64_t woken = 0;
  };
  struct CycleAgg {
    std::vector<uint64_t> tids;
    std::vector<uint64_t> monitors;
    uint64_t first_instr = 0;  // min across runs
    uint64_t count = 0;
  };

  std::map<uint64_t, MonitorAgg> monitors_;
  std::map<std::tuple<uint64_t, uint64_t, uint64_t>, uint64_t> wait_edges_;
  std::set<std::pair<uint64_t, uint64_t>> inversions_;
  std::map<std::string, CycleAgg> cycles_;
  uint64_t runs_ = 0;
  uint64_t run_instr_count_ = 0;
  bool verified_ = true;
  bool post_violation_ = false;
};

class RacesMerger {
 public:
  void add_json(const std::string& json);
  // The merged dejavu-races-v1 document. Races dedup by their static
  // (kind, first site, second site) pair -- dynamic counts sum, the
  // earliest-seen instance (min first_instr, then field order) is the
  // representative, so the fold stays associative and order-independent.
  std::string artifact() const;
  uint64_t runs() const { return runs_; }

 private:
  struct RaceAgg {
    std::string cls;
    std::string alloc_site;
    uint64_t slot = 0;
    uint64_t first_instr = 0;
    uint64_t first_tid = 0, second_tid = 0;
    int64_t first_line = -1, second_line = -1;
    uint64_t first_clock = 0, second_clock = 0;
    uint64_t count = 0;
    // Representative selection must not depend on merge order: prefer the
    // smaller first_instr, then the lexicographically smaller field tuple.
    std::tuple<uint64_t, std::string, std::string, uint64_t, uint64_t,
               uint64_t, uint64_t, uint64_t>
    rep_key() const {
      return {first_instr, cls, alloc_site, slot,
              first_tid, second_tid, first_clock, second_clock};
    }
  };

  // (kind, first site, second site) -> aggregate.
  std::map<std::tuple<std::string, std::string, std::string>, RaceAgg>
      races_;
  uint64_t runs_ = 0;
  uint64_t dynamic_count_ = 0;
  uint64_t checks_ = 0;
  uint64_t run_instr_count_ = 0;
  bool verified_ = true;
  bool post_violation_ = false;
};

class HeapMerger {
 public:
  void add_json(const std::string& json);
  // The merged dejavu-heap-v1 document. Per-object identities are not
  // comparable across traces, so the fleet's hot_objects view re-keys them
  // by (class, allocation site) and sums heat per key.
  std::string artifact() const;
  uint64_t runs() const { return runs_; }

 private:
  struct TypeAgg {
    uint64_t count = 0;
    uint64_t slots = 0;
  };

  struct HotAgg {
    uint64_t objects = 0;
    uint64_t reads = 0;
    uint64_t writes = 0;
  };

  std::map<std::string, TypeAgg> by_type_;  // keyed by class name
  std::map<std::string, uint64_t> sites_;
  // (class, site) -> summed heat of every hot object reported under it.
  std::map<std::pair<std::string, std::string>, HotAgg> hot_;
  uint64_t runs_ = 0;
  uint64_t allocs_ = 0;
  uint64_t alloc_slots_ = 0;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  uint64_t gc_moves_ = 0;
  uint64_t run_instr_count_ = 0;
  bool verified_ = true;
  bool post_violation_ = false;
};

class CritPathMerger {
 public:
  void add_json(const std::string& json);
  // The merged dejavu-critpath-v1 document. Per-run critical-path segment
  // lists are trace-local (instruction indices don't compare across
  // traces), so the fleet view keeps the mergeable aggregates: per-tid wall
  // breakdowns, per-method critical-path attribution, and the edge-kind
  // histogram.
  std::string artifact() const;
  uint64_t runs() const { return runs_; }

 private:
  struct WallAgg {
    uint64_t running = 0;
    uint64_t runnable = 0;
    uint64_t blocked = 0;
    uint64_t waiting = 0;
  };

  std::map<uint64_t, WallAgg> threads_;      // keyed by tid
  std::map<std::string, uint64_t> methods_;  // critical-path instrs
  std::map<std::string, uint64_t> edges_;    // edge kind -> hop count
  uint64_t runs_ = 0;
  uint64_t switches_ = 0;
  uint64_t path_instrs_ = 0;
  uint64_t run_instr_count_ = 0;
  bool verified_ = true;
  bool post_violation_ = false;
};

class CacheSimMerger {
 public:
  void add_json(const std::string& json);
  // The merged dejavu-cachesim-v1 document. Synthetic line indices are
  // trace-local, so shared-line reports are re-keyed by class
  // ("shared_by_class"); geometry fields fold with min() (merging documents
  // simulated under different geometries is legal but not meaningful).
  std::string artifact() const;
  uint64_t runs() const { return runs_; }

 private:
  struct SiteAgg {
    uint64_t accesses = 0;
    uint64_t l1_misses = 0;
    uint64_t l2_misses = 0;
  };
  struct SharedAgg {
    uint64_t lines = 0;
    uint64_t accesses = 0;
    uint64_t false_sharing = 0;  // entries with >1 distinct slot
  };

  std::map<std::string, SiteAgg> by_site_;
  std::map<std::string, SiteAgg> by_type_;   // keyed by class name
  std::map<std::string, SharedAgg> shared_;  // keyed by class name
  uint64_t runs_ = 0;
  uint64_t accesses_ = 0;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  uint64_t l1_misses_ = 0;
  uint64_t l2_misses_ = 0;
  uint64_t shared_line_count_ = 0;
  uint64_t false_sharing_lines_ = 0;
  uint64_t run_instr_count_ = 0;
  static constexpr uint64_t kUnset = ~uint64_t(0);
  uint64_t line_bytes_ = kUnset;
  uint64_t l1_bytes_ = kUnset;
  uint64_t l1_ways_ = kUnset;
  uint64_t l2_bytes_ = kUnset;
  uint64_t l2_ways_ = kUnset;
  bool verified_ = true;
  bool post_violation_ = false;
};

}  // namespace dejavu::obs

#include "src/obs/analysis/cache_sim.hpp"

#include <algorithm>

#include "src/obs/json.hpp"
#include "src/vm/vm.hpp"

namespace dejavu::obs {

namespace {
uint64_t align_up(uint64_t n, uint64_t a) { return (n + a - 1) / a * a; }
}  // namespace

CacheSimAnalyzer::CacheSimAnalyzer(uint32_t line_bytes, CacheLevelConfig l1,
                                   CacheLevelConfig l2, uint32_t top_n)
    : line_bytes_(line_bytes < 8 ? 8 : line_bytes),
      l1_bytes_(l1.size_bytes),
      l1_ways_(l1.ways),
      l2_bytes_(l2.size_bytes),
      l2_ways_(l2.ways),
      top_n_(top_n) {
  auto init = [this](Level& lvl, const CacheLevelConfig& c) {
    lvl.ways = c.ways == 0 ? 1 : c.ways;
    uint64_t lines = c.size_bytes / line_bytes_;
    lvl.sets = uint32_t(lines / lvl.ways);
    if (lvl.sets == 0) lvl.sets = 1;
    lvl.tags.assign(size_t(lvl.sets) * lvl.ways, 0);
    lvl.ticks.assign(size_t(lvl.sets) * lvl.ways, 0);
  };
  init(l1_, l1);
  init(l2_, l2);
}

bool CacheSimAnalyzer::Level::access(uint64_t line, uint64_t tick) {
  size_t base = size_t(line % sets) * ways;
  size_t victim = base;
  uint64_t victim_tick = UINT64_MAX;
  for (size_t i = base; i < base + ways; ++i) {
    if (tags[i] == line + 1) {
      ticks[i] = tick;
      return true;
    }
    // Empty ways (tag 0, tick 0) are always the first victims: live ticks
    // start at 1.
    uint64_t t = tags[i] == 0 ? 0 : ticks[i];
    if (t < victim_tick) {
      victim_tick = t;
      victim = i;
    }
  }
  tags[victim] = line + 1;
  ticks[victim] = tick;
  return false;
}

void CacheSimAnalyzer::on_run_begin(const vm::Vm& vm) {
  types_ = &vm.types();
  for (auto& [id, ts] : by_type_) ts.name = class_name(id);
}

void CacheSimAnalyzer::on_instruction(const vm::InstrEvent& ev) {
  if (last_instr_.size() <= ev.tid) last_instr_.resize(ev.tid + 1);
  SiteRef& s = last_instr_[ev.tid];
  s.owner = ev.owner;
  s.method = ev.method;
  s.pc = ev.pc;
  last_tid_ = ev.tid;
}

std::string CacheSimAnalyzer::class_name(uint32_t class_id) const {
  switch (class_id) {
    case heap::kClassIdI64Array: return "i64[]";
    case heap::kClassIdRefArray: return "ref[]";
    case heap::kClassIdByteArray: return "byte[]";
    default: break;
  }
  if (class_id == 0) return "<boot>";
  if (types_ != nullptr) return types_->info(class_id).name;
  return "class#" + std::to_string(class_id);
}

uint64_t CacheSimAnalyzer::id_at(heap::Addr addr, uint32_t slots_hint) {
  auto it = live_.find(addr);
  if (it != live_.end()) return it->second;
  uint64_t id = objects_.size();
  Obj o;
  o.base = next_base_;
  // Reserve a line-aligned region so objects never share a synthetic line;
  // pre-attach objects (boot image, unknown size) get a generous region.
  uint64_t bytes = slots_hint > 0 ? uint64_t(slots_hint) * 8 : uint64_t(1) << 20;
  next_base_ += align_up(bytes < line_bytes_ ? line_bytes_ : bytes,
                         line_bytes_);
  objects_.push_back(o);
  live_.emplace(addr, id);
  return id;
}

void CacheSimAnalyzer::on_heap_alloc(const vm::AllocEvent& e) {
  // The address may be recycled from a dead object: drop the old identity
  // first so id_at creates a fresh region for the newcomer.
  live_.erase(e.addr);
  uint64_t id = id_at(e.addr, e.slots == 0 ? 1 : e.slots);
  objects_[id].class_id = e.class_id;
  TypeStat& ts = by_type_[e.class_id];
  if (ts.name.empty()) ts.name = class_name(e.class_id);
}

void CacheSimAnalyzer::on_heap_move(heap::Addr from, heap::Addr to) {
  auto it = live_.find(from);
  if (it == live_.end()) return;
  uint64_t id = it->second;
  live_.erase(it);
  live_[to] = id;  // survivor owns the address now; base is unchanged
}

void CacheSimAnalyzer::touch(heap::Addr obj, uint32_t slot, bool is_write) {
  accesses_++;
  (is_write ? writes_ : reads_)++;
  uint64_t id = id_at(obj, 0);
  const Obj& o = objects_[id];
  uint64_t line = (o.base + uint64_t(slot) * 8) / line_bytes_;

  tick_++;
  bool hit1 = l1_.access(line, tick_);
  bool hit2 = true;
  if (!hit1) {
    l1_misses_++;
    hit2 = l2_.access(line, tick_);
    if (!hit2) l2_misses_++;
  }

  // Per-site attribution: the instruction the current thread is executing.
  std::string site = "<vm>";
  if (last_tid_ < last_instr_.size() &&
      last_instr_[last_tid_].owner != nullptr) {
    const SiteRef& s = last_instr_[last_tid_];
    site = *s.owner + "." + *s.method + ":" + std::to_string(s.pc);
  }
  SiteStat& ss = by_site_[site];
  ss.accesses++;
  if (!hit1) ss.l1_misses++;
  if (!hit2) ss.l2_misses++;

  TypeStat& ts = by_type_[o.class_id];
  if (ts.name.empty()) ts.name = class_name(o.class_id);
  ts.accesses++;
  if (!hit1) ts.l1_misses++;
  if (!hit2) ts.l2_misses++;

  LineStat& ls = lines_[line];
  if (ls.accesses == 0) ls.class_id = o.class_id;
  ls.accesses++;
  if (std::find(ls.tids.begin(), ls.tids.end(), last_tid_) == ls.tids.end())
    ls.tids.push_back(last_tid_);
  if (std::find(ls.slots.begin(), ls.slots.end(), slot) == ls.slots.end())
    ls.slots.push_back(slot);
}

void CacheSimAnalyzer::on_heap_read(heap::Addr obj, uint32_t slot, int64_t,
                                    bool) {
  touch(obj, slot, /*is_write=*/false);
}

void CacheSimAnalyzer::on_heap_write(heap::Addr obj, uint32_t slot, int64_t,
                                     bool) {
  touch(obj, slot, /*is_write=*/true);
}

std::vector<CacheSimAnalyzer::SharedLine> CacheSimAnalyzer::shared_lines()
    const {
  std::vector<SharedLine> out;
  for (const auto& [line, ls] : lines_) {
    if (ls.tids.size() < 2) continue;
    SharedLine sl;
    sl.line = line;
    sl.accesses = ls.accesses;
    sl.threads = uint32_t(ls.tids.size());
    sl.slots = uint32_t(ls.slots.size());
    auto it = by_type_.find(ls.class_id);
    sl.class_name = it != by_type_.end() && !it->second.name.empty()
                        ? it->second.name
                        : class_name(ls.class_id);
    out.push_back(std::move(sl));
  }
  std::sort(out.begin(), out.end(), [](const SharedLine& a,
                                       const SharedLine& b) {
    if (a.accesses != b.accesses) return a.accesses > b.accesses;
    return a.line < b.line;
  });
  return out;
}

std::string CacheSimAnalyzer::artifact() const {
  std::vector<SharedLine> shared = shared_lines();
  uint64_t false_sharing = 0;
  for (const SharedLine& sl : shared)
    if (sl.slots > 1) false_sharing++;

  JsonWriter w;
  w.begin_object()
      .kv("schema", "dejavu-cachesim-v1")
      .kv("line_bytes", uint64_t(line_bytes_))
      .kv("l1_bytes", uint64_t(l1_bytes_))
      .kv("l1_ways", uint64_t(l1_ways_))
      .kv("l2_bytes", uint64_t(l2_bytes_))
      .kv("l2_ways", uint64_t(l2_ways_))
      .kv("accesses", accesses_)
      .kv("reads", reads_)
      .kv("writes", writes_)
      .kv("l1_misses", l1_misses_)
      .kv("l2_misses", l2_misses_)
      .kv("shared_line_count", uint64_t(shared.size()))
      .kv("false_sharing_lines", false_sharing)
      .kv("run_instr_count", run_.instr_count)
      .kv("verified", run_.verified)
      .kv("post_violation", run_.post_violation);

  std::vector<std::pair<const std::string*, const SiteStat*>> sites;
  sites.reserve(by_site_.size());
  for (const auto& [site, ss] : by_site_) sites.emplace_back(&site, &ss);
  std::sort(sites.begin(), sites.end(), [](const auto& a, const auto& b) {
    if (a.second->accesses != b.second->accesses)
      return a.second->accesses > b.second->accesses;
    return *a.first < *b.first;
  });
  if (sites.size() > top_n_) sites.resize(top_n_);
  w.key("by_site").begin_array();
  for (const auto& [site, ss] : sites) {
    w.begin_object()
        .kv("site", *site)
        .kv("accesses", ss->accesses)
        .kv("l1_misses", ss->l1_misses)
        .kv("l2_misses", ss->l2_misses)
        .end_object();
  }
  w.end_array();

  std::vector<const TypeStat*> types;
  types.reserve(by_type_.size());
  for (const auto& [id, ts] : by_type_) types.push_back(&ts);
  std::sort(types.begin(), types.end(),
            [](const TypeStat* a, const TypeStat* b) {
              if (a->accesses != b->accesses) return a->accesses > b->accesses;
              return a->name < b->name;
            });
  w.key("by_type").begin_array();
  for (const TypeStat* ts : types) {
    w.begin_object()
        .kv("class", ts->name)
        .kv("accesses", ts->accesses)
        .kv("l1_misses", ts->l1_misses)
        .kv("l2_misses", ts->l2_misses)
        .end_object();
  }
  w.end_array();

  if (shared.size() > top_n_) shared.resize(top_n_);
  w.key("shared_lines").begin_array();
  for (const SharedLine& sl : shared) {
    w.begin_object()
        .kv("line", sl.line)
        .kv("class", sl.class_name)
        .kv("accesses", sl.accesses)
        .kv("threads", uint64_t(sl.threads))
        .kv("distinct_slots", uint64_t(sl.slots))
        .end_object();
  }
  w.end_array().end_object();
  return w.str();
}

}  // namespace dejavu::obs

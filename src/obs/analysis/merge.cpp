#include "src/obs/analysis/merge.hpp"

#include <algorithm>

#include "src/common/check.hpp"
#include "src/obs/json.hpp"

namespace dejavu::obs {

namespace {

const JsonValue& doc_check(const JsonValue& v, const char* schema) {
  const JsonValue* s = v.find("schema");
  if (s == nullptr || !s->is_string() || s->string != schema)
    throw VmError(std::string("merger: expected ") + schema);
  return v;
}

uint64_t num(const JsonValue& obj, const char* k, uint64_t dflt = 0) {
  const JsonValue* v = obj.find(k);
  return v != nullptr && v->is_number() ? uint64_t(v->number) : dflt;
}

int64_t snum(const JsonValue& obj, const char* k, int64_t dflt = 0) {
  const JsonValue* v = obj.find(k);
  return v != nullptr && v->is_number() ? int64_t(v->number) : dflt;
}

bool flag(const JsonValue& obj, const char* k, bool dflt) {
  const JsonValue* v = obj.find(k);
  return v != nullptr && v->type == JsonValue::Type::kBool ? v->boolean : dflt;
}

std::string str(const JsonValue& obj, const char* k) {
  const JsonValue* v = obj.find(k);
  return v != nullptr && v->is_string() ? v->string : std::string();
}

// Number of per-run documents a (possibly already merged) input represents.
uint64_t doc_runs(const JsonValue& v) { return num(v, "merged_runs", 1); }

}  // namespace

// ------------------------------------------------------------- profile

void ProfileMerger::add_json(const std::string& json) {
  JsonValue v = parse_json(json);
  doc_check(v, "dejavu-profile-v1");
  runs_ += doc_runs(v);
  total_instructions_ += num(v, "total_instructions");
  total_yield_points_ += num(v, "total_yield_points");
  run_instr_count_ += num(v, "run_instr_count");
  run_logical_clock_ += num(v, "run_logical_clock");
  verified_ = verified_ && flag(v, "verified", false);
  post_violation_ = post_violation_ || flag(v, "post_violation", false);

  const JsonValue* methods = v.find("methods");
  if (methods == nullptr || !methods->is_array()) return;
  for (const JsonValue& m : methods->items) {
    MethodAgg& agg = methods_[str(m, "name")];
    agg.instructions += num(m, "instructions");
    agg.yield_points += num(m, "yield_points");
    const JsonValue* pcs = m.find("hot_pcs");
    if (pcs == nullptr || !pcs->is_array()) continue;
    for (const JsonValue& pc : pcs->items) {
      agg.pcs[{num(pc, "pc"), str(pc, "op"), snum(pc, "line", -1)}] +=
          num(pc, "count");
    }
  }
}

std::string ProfileMerger::artifact() const {
  std::vector<const std::map<std::string, MethodAgg>::value_type*> order;
  order.reserve(methods_.size());
  for (const auto& kv : methods_) order.push_back(&kv);
  std::sort(order.begin(), order.end(), [](const auto* a, const auto* b) {
    if (a->second.instructions != b->second.instructions)
      return a->second.instructions > b->second.instructions;
    return a->first < b->first;
  });

  JsonWriter w;
  w.begin_object()
      .kv("schema", "dejavu-profile-v1")
      .kv("merged_runs", runs_)
      .kv("total_instructions", total_instructions_)
      .kv("total_yield_points", total_yield_points_)
      .kv("run_instr_count", run_instr_count_)
      .kv("run_logical_clock", run_logical_clock_)
      .kv("verified", verified_)
      .kv("post_violation", post_violation_);
  w.key("methods").begin_array();
  for (const auto* m : order) {
    w.begin_object()
        .kv("name", m->first)
        .kv("instructions", m->second.instructions)
        .kv("yield_points", m->second.yield_points);
    std::vector<const PcMap::value_type*> pcs;
    pcs.reserve(m->second.pcs.size());
    for (const auto& kv : m->second.pcs) pcs.push_back(&kv);
    std::sort(pcs.begin(), pcs.end(), [](const auto* a, const auto* b) {
      if (a->second != b->second) return a->second > b->second;
      return a->first < b->first;
    });
    w.key("hot_pcs").begin_array();
    for (const auto* pc : pcs) {
      w.begin_object()
          .kv("pc", std::get<0>(pc->first))
          .kv("op", std::get<1>(pc->first))
          .kv("line", std::get<2>(pc->first))
          .kv("count", pc->second)
          .end_object();
    }
    w.end_array().end_object();
  }
  w.end_array().end_object();
  return w.str();
}

// ---------------------------------------------------------------- locks

void LocksMerger::add_json(const std::string& json) {
  JsonValue v = parse_json(json);
  doc_check(v, "dejavu-locks-v1");
  runs_ += doc_runs(v);
  run_instr_count_ += num(v, "run_instr_count");
  verified_ = verified_ && flag(v, "verified", false);
  post_violation_ = post_violation_ || flag(v, "post_violation", false);

  const JsonValue* mons = v.find("monitors");
  if (mons != nullptr && mons->is_array()) {
    for (const JsonValue& m : mons->items) {
      MonitorAgg& agg = monitors_[num(m, "id")];
      agg.acquires += num(m, "acquires");
      agg.recursive_acquires += num(m, "recursive_acquires");
      agg.contended_blocks += num(m, "contended_blocks");
      agg.hold_total += num(m, "hold_total");
      agg.hold_max = std::max(agg.hold_max, num(m, "hold_max"));
      agg.block_total += num(m, "block_total");
      agg.block_max = std::max(agg.block_max, num(m, "block_max"));
      agg.waits += num(m, "waits");
      agg.wait_total += num(m, "wait_total");
      agg.wait_max = std::max(agg.wait_max, num(m, "wait_max"));
      agg.notify_ops += num(m, "notify_ops");
      agg.woken += num(m, "woken");
    }
  }
  const JsonValue* edges = v.find("wait_edges");
  if (edges != nullptr && edges->is_array()) {
    for (const JsonValue& e : edges->items) {
      wait_edges_[{num(e, "blocked"), num(e, "holder"), num(e, "monitor")}] +=
          num(e, "count");
    }
  }
  const JsonValue* inv = v.find("inversions");
  if (inv != nullptr && inv->is_array()) {
    for (const JsonValue& p : inv->items)
      inversions_.insert({num(p, "a"), num(p, "b")});
  }
  const JsonValue* warns = v.find("deadlock_warnings");
  if (warns != nullptr && warns->is_array()) {
    for (const JsonValue& c : warns->items) {
      std::vector<uint64_t> tids, monitors;
      const JsonValue* t = c.find("tids");
      const JsonValue* m = c.find("monitors");
      if (t != nullptr && t->is_array())
        for (const JsonValue& x : t->items) tids.push_back(uint64_t(x.number));
      if (m != nullptr && m->is_array())
        for (const JsonValue& x : m->items)
          monitors.push_back(uint64_t(x.number));
      std::string key;
      for (size_t i = 0; i < tids.size(); ++i) {
        key += std::to_string(tids[i]) + ":" +
               (i < monitors.size() ? std::to_string(monitors[i]) : "?") + ";";
      }
      CycleAgg& agg = cycles_[key];
      uint64_t first = num(c, "first_instr");
      if (agg.count == 0) {
        agg.tids = std::move(tids);
        agg.monitors = std::move(monitors);
        agg.first_instr = first;
      } else {
        agg.first_instr = std::min(agg.first_instr, first);
      }
      agg.count += num(c, "count");
    }
  }
}

std::string LocksMerger::artifact() const {
  JsonWriter w;
  w.begin_object()
      .kv("schema", "dejavu-locks-v1")
      .kv("merged_runs", runs_)
      .kv("duration_unit", "instructions")
      .kv("run_instr_count", run_instr_count_)
      .kv("verified", verified_)
      .kv("post_violation", post_violation_);
  w.key("monitors").begin_array();
  for (const auto& [id, st] : monitors_) {
    w.begin_object()
        .kv("id", id)
        .kv("acquires", st.acquires)
        .kv("recursive_acquires", st.recursive_acquires)
        .kv("contended_blocks", st.contended_blocks)
        .kv("hold_total", st.hold_total)
        .kv("hold_max", st.hold_max)
        .kv("block_total", st.block_total)
        .kv("block_max", st.block_max)
        .kv("waits", st.waits)
        .kv("wait_total", st.wait_total)
        .kv("wait_max", st.wait_max)
        .kv("notify_ops", st.notify_ops)
        .kv("woken", st.woken)
        .end_object();
  }
  w.end_array();
  w.key("wait_edges").begin_array();
  for (const auto& [edge, count] : wait_edges_) {
    w.begin_object()
        .kv("blocked", std::get<0>(edge))
        .kv("holder", std::get<1>(edge))
        .kv("monitor", std::get<2>(edge))
        .kv("count", count)
        .end_object();
  }
  w.end_array();
  w.key("inversions").begin_array();
  for (const auto& [a, b] : inversions_) {
    w.begin_object().kv("a", a).kv("b", b).end_object();
  }
  w.end_array();
  w.key("deadlock_warnings").begin_array();
  for (const auto& [key, c] : cycles_) {
    w.begin_object();
    w.key("tids").begin_array();
    for (uint64_t t : c.tids) w.value(t);
    w.end_array();
    w.key("monitors").begin_array();
    for (uint64_t m : c.monitors) w.value(m);
    w.end_array();
    w.kv("first_instr", c.first_instr).kv("count", c.count).end_object();
  }
  w.end_array().end_object();
  return w.str();
}

// ---------------------------------------------------------------- races

void RacesMerger::add_json(const std::string& json) {
  JsonValue v = parse_json(json);
  doc_check(v, "dejavu-races-v1");
  runs_ += doc_runs(v);
  dynamic_count_ += num(v, "dynamic_count");
  checks_ += num(v, "checks");
  run_instr_count_ += num(v, "run_instr_count");
  verified_ = verified_ && flag(v, "verified", false);
  post_violation_ = post_violation_ || flag(v, "post_violation", false);

  const JsonValue* races = v.find("races");
  if (races == nullptr || !races->is_array()) return;
  for (const JsonValue& r : races->items) {
    RaceAgg in;
    in.cls = str(r, "class");
    in.alloc_site = str(r, "alloc_site");
    in.slot = num(r, "slot");
    in.first_instr = num(r, "first_instr");
    in.first_tid = num(r, "first_tid");
    in.second_tid = num(r, "second_tid");
    in.first_line = snum(r, "first_line", -1);
    in.second_line = snum(r, "second_line", -1);
    in.first_clock = num(r, "first_clock");
    in.second_clock = num(r, "second_clock");
    in.count = num(r, "count", 1);

    RaceAgg& agg = races_[{str(r, "kind"), str(r, "first_site"),
                           str(r, "second_site")}];
    if (agg.count == 0 || in.rep_key() < agg.rep_key()) {
      uint64_t count = agg.count;
      agg = in;
      agg.count = count;
    }
    agg.count += in.count;
  }
}

std::string RacesMerger::artifact() const {
  JsonWriter w;
  w.begin_object()
      .kv("schema", "dejavu-races-v1")
      .kv("merged_runs", runs_)
      .kv("edge_model", "sync-only (monitor, spawn/join, cross-lane wakes)")
      .kv("race_count", uint64_t(races_.size()))
      .kv("dynamic_count", dynamic_count_)
      .kv("checks", checks_)
      .kv("run_instr_count", run_instr_count_)
      .kv("verified", verified_)
      .kv("post_violation", post_violation_);

  std::vector<const std::map<std::tuple<std::string, std::string,
                                        std::string>,
                             RaceAgg>::value_type*> order;
  order.reserve(races_.size());
  for (const auto& kv : races_) order.push_back(&kv);
  std::sort(order.begin(), order.end(), [](const auto* a, const auto* b) {
    if (a->second.count != b->second.count)
      return a->second.count > b->second.count;
    return a->first < b->first;
  });
  w.key("races").begin_array();
  for (const auto* kv : order) {
    const RaceAgg& r = kv->second;
    w.begin_object()
        .kv("kind", std::get<0>(kv->first))
        .kv("class", r.cls)
        .kv("alloc_site", r.alloc_site)
        .kv("slot", r.slot)
        .kv("count", r.count)
        .kv("first_instr", r.first_instr)
        .kv("first_tid", r.first_tid)
        .kv("first_site", std::get<1>(kv->first))
        .kv("first_line", r.first_line)
        .kv("first_clock", r.first_clock)
        .kv("second_tid", r.second_tid)
        .kv("second_site", std::get<2>(kv->first))
        .kv("second_line", r.second_line)
        .kv("second_clock", r.second_clock)
        .end_object();
  }
  w.end_array().end_object();
  return w.str();
}

// ----------------------------------------------------------------- heap

void HeapMerger::add_json(const std::string& json) {
  JsonValue v = parse_json(json);
  doc_check(v, "dejavu-heap-v1");
  runs_ += doc_runs(v);
  allocs_ += num(v, "allocs");
  alloc_slots_ += num(v, "alloc_slots");
  reads_ += num(v, "reads");
  writes_ += num(v, "writes");
  gc_moves_ += num(v, "gc_moves");
  run_instr_count_ += num(v, "run_instr_count");
  verified_ = verified_ && flag(v, "verified", false);
  post_violation_ = post_violation_ || flag(v, "post_violation", false);

  const JsonValue* types = v.find("by_type");
  if (types != nullptr && types->is_array()) {
    for (const JsonValue& t : types->items) {
      TypeAgg& agg = by_type_[str(t, "class")];
      agg.count += num(t, "count");
      agg.slots += num(t, "slots");
    }
  }
  const JsonValue* sites = v.find("top_sites");
  if (sites != nullptr && sites->is_array()) {
    for (const JsonValue& s : sites->items)
      sites_[str(s, "site")] += num(s, "count");
  }
  const JsonValue* hot = v.find("hot_objects");
  if (hot != nullptr && hot->is_array()) {
    for (const JsonValue& o : hot->items) {
      // Per-run entries are single objects; already-merged documents carry
      // an "objects" tally instead. Default to 1 so both feed the same key.
      HotAgg& agg = hot_[{str(o, "class"), str(o, "site")}];
      agg.objects += num(o, "objects", 1);
      agg.reads += num(o, "reads");
      agg.writes += num(o, "writes");
    }
  }
}

std::string HeapMerger::artifact() const {
  JsonWriter w;
  w.begin_object()
      .kv("schema", "dejavu-heap-v1")
      .kv("merged_runs", runs_)
      .kv("object_identity", "stable (copying-GC forwarding tracked)")
      .kv("allocs", allocs_)
      .kv("alloc_slots", alloc_slots_)
      .kv("reads", reads_)
      .kv("writes", writes_)
      .kv("gc_moves", gc_moves_)
      .kv("run_instr_count", run_instr_count_)
      .kv("verified", verified_)
      .kv("post_violation", post_violation_);

  std::vector<const std::map<std::string, TypeAgg>::value_type*> types;
  types.reserve(by_type_.size());
  for (const auto& kv : by_type_) types.push_back(&kv);
  std::sort(types.begin(), types.end(), [](const auto* a, const auto* b) {
    if (a->second.count != b->second.count)
      return a->second.count > b->second.count;
    return a->first < b->first;
  });
  w.key("by_type").begin_array();
  for (const auto* t : types) {
    w.begin_object()
        .kv("class", t->first)
        .kv("count", t->second.count)
        .kv("slots", t->second.slots)
        .end_object();
  }
  w.end_array();

  std::vector<std::pair<std::string, uint64_t>> sites(sites_.begin(),
                                                      sites_.end());
  std::sort(sites.begin(), sites.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  w.key("top_sites").begin_array();
  for (const auto& [site, count] : sites) {
    w.begin_object().kv("site", site).kv("count", count).end_object();
  }
  w.end_array();

  // Per-object identities are per-trace; the fleet view re-keys hot
  // objects by (class, allocation site), which is stable across runs.
  std::vector<const std::map<std::pair<std::string, std::string>,
                             HotAgg>::value_type*> hot;
  hot.reserve(hot_.size());
  for (const auto& kv : hot_) hot.push_back(&kv);
  std::sort(hot.begin(), hot.end(), [](const auto* a, const auto* b) {
    uint64_t ha = a->second.reads + a->second.writes;
    uint64_t hb = b->second.reads + b->second.writes;
    if (ha != hb) return ha > hb;
    return a->first < b->first;
  });
  w.key("hot_objects").begin_array();
  for (const auto* h : hot) {
    w.begin_object()
        .kv("class", h->first.first)
        .kv("site", h->first.second)
        .kv("objects", h->second.objects)
        .kv("reads", h->second.reads)
        .kv("writes", h->second.writes)
        .end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

// ------------------------------------------------------------- critpath

void CritPathMerger::add_json(const std::string& json) {
  JsonValue v = parse_json(json);
  doc_check(v, "dejavu-critpath-v1");
  runs_ += doc_runs(v);
  switches_ += num(v, "switches");
  path_instrs_ += num(v, "critical_path_instrs");
  run_instr_count_ += num(v, "run_instr_count");
  verified_ = verified_ && flag(v, "verified", false);
  post_violation_ = post_violation_ || flag(v, "post_violation", false);

  const JsonValue* threads = v.find("threads");
  if (threads != nullptr && threads->is_array()) {
    for (const JsonValue& t : threads->items) {
      WallAgg& agg = threads_[num(t, "tid")];
      agg.running += num(t, "running");
      agg.runnable += num(t, "runnable");
      agg.blocked += num(t, "blocked");
      agg.waiting += num(t, "waiting");
    }
  }
  const JsonValue* methods = v.find("by_method");
  if (methods != nullptr && methods->is_array()) {
    for (const JsonValue& m : methods->items)
      methods_[str(m, "method")] += num(m, "instrs");
  }
  const JsonValue* edges = v.find("edge_kinds");
  if (edges != nullptr && edges->is_array()) {
    for (const JsonValue& e : edges->items)
      edges_[str(e, "kind")] += num(e, "count");
  }
}

std::string CritPathMerger::artifact() const {
  JsonWriter w;
  w.begin_object()
      .kv("schema", "dejavu-critpath-v1")
      .kv("merged_runs", runs_)
      .kv("run_instr_count", run_instr_count_)
      .kv("switches", switches_)
      .kv("critical_path_instrs", path_instrs_)
      .kv("verified", verified_)
      .kv("post_violation", post_violation_);

  w.key("threads").begin_array();
  for (const auto& [tid, tw] : threads_) {
    w.begin_object()
        .kv("tid", tid)
        .kv("running", tw.running)
        .kv("runnable", tw.runnable)
        .kv("blocked", tw.blocked)
        .kv("waiting", tw.waiting)
        .end_object();
  }
  w.end_array();

  std::vector<const std::map<std::string, uint64_t>::value_type*> methods;
  methods.reserve(methods_.size());
  for (const auto& kv : methods_) methods.push_back(&kv);
  std::sort(methods.begin(), methods.end(), [](const auto* a, const auto* b) {
    if (a->second != b->second) return a->second > b->second;
    return a->first < b->first;
  });
  w.key("by_method").begin_array();
  for (const auto* m : methods) {
    w.begin_object().kv("method", m->first).kv("instrs", m->second)
        .end_object();
  }
  w.end_array();

  w.key("edge_kinds").begin_array();
  for (const auto& [kind, count] : edges_) {
    w.begin_object().kv("kind", kind).kv("count", count).end_object();
  }
  w.end_array().end_object();
  return w.str();
}

// ------------------------------------------------------------- cachesim

void CacheSimMerger::add_json(const std::string& json) {
  JsonValue v = parse_json(json);
  doc_check(v, "dejavu-cachesim-v1");
  runs_ += doc_runs(v);
  accesses_ += num(v, "accesses");
  reads_ += num(v, "reads");
  writes_ += num(v, "writes");
  l1_misses_ += num(v, "l1_misses");
  l2_misses_ += num(v, "l2_misses");
  shared_line_count_ += num(v, "shared_line_count");
  false_sharing_lines_ += num(v, "false_sharing_lines");
  run_instr_count_ += num(v, "run_instr_count");
  line_bytes_ = std::min(line_bytes_, num(v, "line_bytes", kUnset));
  l1_bytes_ = std::min(l1_bytes_, num(v, "l1_bytes", kUnset));
  l1_ways_ = std::min(l1_ways_, num(v, "l1_ways", kUnset));
  l2_bytes_ = std::min(l2_bytes_, num(v, "l2_bytes", kUnset));
  l2_ways_ = std::min(l2_ways_, num(v, "l2_ways", kUnset));
  verified_ = verified_ && flag(v, "verified", false);
  post_violation_ = post_violation_ || flag(v, "post_violation", false);

  const JsonValue* sites = v.find("by_site");
  if (sites != nullptr && sites->is_array()) {
    for (const JsonValue& s : sites->items) {
      SiteAgg& agg = by_site_[str(s, "site")];
      agg.accesses += num(s, "accesses");
      agg.l1_misses += num(s, "l1_misses");
      agg.l2_misses += num(s, "l2_misses");
    }
  }
  const JsonValue* types = v.find("by_type");
  if (types != nullptr && types->is_array()) {
    for (const JsonValue& t : types->items) {
      SiteAgg& agg = by_type_[str(t, "class")];
      agg.accesses += num(t, "accesses");
      agg.l1_misses += num(t, "l1_misses");
      agg.l2_misses += num(t, "l2_misses");
    }
  }
  // Per-run documents report individual shared lines; merged documents
  // carry the re-keyed per-class tallies. Fold both into the same keys.
  const JsonValue* lines = v.find("shared_lines");
  if (lines != nullptr && lines->is_array()) {
    for (const JsonValue& l : lines->items) {
      SharedAgg& agg = shared_[str(l, "class")];
      agg.lines += 1;
      agg.accesses += num(l, "accesses");
      if (num(l, "distinct_slots") > 1) agg.false_sharing += 1;
    }
  }
  const JsonValue* byc = v.find("shared_by_class");
  if (byc != nullptr && byc->is_array()) {
    for (const JsonValue& c : byc->items) {
      SharedAgg& agg = shared_[str(c, "class")];
      agg.lines += num(c, "lines");
      agg.accesses += num(c, "accesses");
      agg.false_sharing += num(c, "false_sharing");
    }
  }
}

std::string CacheSimMerger::artifact() const {
  JsonWriter w;
  w.begin_object()
      .kv("schema", "dejavu-cachesim-v1")
      .kv("merged_runs", runs_)
      .kv("line_bytes", line_bytes_ == kUnset ? 0 : line_bytes_)
      .kv("l1_bytes", l1_bytes_ == kUnset ? 0 : l1_bytes_)
      .kv("l1_ways", l1_ways_ == kUnset ? 0 : l1_ways_)
      .kv("l2_bytes", l2_bytes_ == kUnset ? 0 : l2_bytes_)
      .kv("l2_ways", l2_ways_ == kUnset ? 0 : l2_ways_)
      .kv("accesses", accesses_)
      .kv("reads", reads_)
      .kv("writes", writes_)
      .kv("l1_misses", l1_misses_)
      .kv("l2_misses", l2_misses_)
      .kv("shared_line_count", shared_line_count_)
      .kv("false_sharing_lines", false_sharing_lines_)
      .kv("run_instr_count", run_instr_count_)
      .kv("verified", verified_)
      .kv("post_violation", post_violation_);

  auto emit_sites = [&w](const char* key, const char* name_key,
                         const std::map<std::string, SiteAgg>& m) {
    std::vector<const std::map<std::string, SiteAgg>::value_type*> order;
    order.reserve(m.size());
    for (const auto& kv : m) order.push_back(&kv);
    std::sort(order.begin(), order.end(), [](const auto* a, const auto* b) {
      if (a->second.accesses != b->second.accesses)
        return a->second.accesses > b->second.accesses;
      return a->first < b->first;
    });
    w.key(key).begin_array();
    for (const auto* s : order) {
      w.begin_object()
          .kv(name_key, s->first)
          .kv("accesses", s->second.accesses)
          .kv("l1_misses", s->second.l1_misses)
          .kv("l2_misses", s->second.l2_misses)
          .end_object();
    }
    w.end_array();
  };
  emit_sites("by_site", "site", by_site_);
  emit_sites("by_type", "class", by_type_);

  std::vector<const std::map<std::string, SharedAgg>::value_type*> shared;
  shared.reserve(shared_.size());
  for (const auto& kv : shared_) shared.push_back(&kv);
  std::sort(shared.begin(), shared.end(), [](const auto* a, const auto* b) {
    if (a->second.accesses != b->second.accesses)
      return a->second.accesses > b->second.accesses;
    return a->first < b->first;
  });
  w.key("shared_by_class").begin_array();
  for (const auto* s : shared) {
    w.begin_object()
        .kv("class", s->first)
        .kv("lines", s->second.lines)
        .kv("accesses", s->second.accesses)
        .kv("false_sharing", s->second.false_sharing)
        .end_object();
  }
  w.end_array().end_object();
  return w.str();
}

}  // namespace dejavu::obs

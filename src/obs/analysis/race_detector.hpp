// The happens-before data-race detector: vector clocks over the replayed
// run's synchronization events, DJIT+-style read/write shadow state over
// its heap traffic.
//
// Happens-before edges come only from synchronization:
//   * monitor release -> next acquire of the same monitor (kExit/kWaitBegin
//     fold the thread's clock into the monitor's; kEnterAcquired/kWaitEnd
//     fold the monitor's into the thread's), notify folding into the
//     monitor like a release;
//   * spawn (parent -> child's first instruction) and join (target's exit
//     -> joiner's continuation), from ThreadEvent;
//   * synchronization-kind cross-lane order events of a multi-lane replay
//     (monitor hand-off, notify, join wake, interrupt) -- the lane merge's
//     own edges, already field-verified by the engine before fan-out.
//
// The scheduler's dispatch order is deliberately NOT an edge: the replayed
// interpreter is a deterministic uniprocessor, so treating dispatches as
// synchronization would totally order every access and hide every race.
// What the detector reports is exactly what could have raced under some
// other legal schedule of the same synchronization structure -- and since
// it runs at replay time, the recorded execution never felt it (§1).
//
// Object identity is stable across copying-GC moves (same live-address map
// as HeapChurnAnalyzer), so shadow state follows relocated objects.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "src/obs/analysis/analysis.hpp"

namespace dejavu::obs {

class RaceDetector : public AnalysisObserver {
 public:
  RaceDetector() = default;

  const char* name() const override { return "races"; }
  bool wants_instructions() const override { return true; }
  bool wants_monitors() const override { return true; }
  bool wants_memory() const override { return true; }
  bool wants_threads() const override { return true; }

  void on_run_begin(const vm::Vm& vm) override;
  void on_run_end(const RunInfo& info) override { run_ = info; }
  void on_instruction(const vm::InstrEvent& ev) override;
  void on_monitor_event(const vm::MonitorEvent& ev) override;
  void on_thread_event(const vm::ThreadEvent& ev) override;
  void on_cross_lane(const threads::CrossLaneEvent& e) override;
  void on_switch(threads::Tid from, threads::Tid to,
                 threads::SwitchReason reason, uint64_t instr_index) override;
  void on_heap_alloc(const vm::AllocEvent& e) override;
  void on_heap_move(heap::Addr from, heap::Addr to) override;
  void on_heap_read(heap::Addr obj, uint32_t slot, int64_t value,
                    bool is_ref) override;
  void on_heap_write(heap::Addr obj, uint32_t slot, int64_t value,
                     bool is_ref) override;

  // dejavu-races-v1 JSON.
  std::string artifact() const override;

  // Distinct (kind, site, site) races found so far.
  uint64_t race_count() const { return races_.size(); }

 private:
  using VectorClock = std::vector<uint64_t>;  // indexed by tid

  // One side of an access, as reported: who, where, when.
  struct Access {
    uint32_t tid = 0;
    const std::string* site = nullptr;  // interned "Owner.method:pc"
    int32_t line = -1;
    uint64_t clock = 0;  // the accessor's own vector-clock component
    uint64_t instr = 0;  // Vm::instr_count() at the access
  };

  // Shadow state per (stable object id, slot).
  struct Shadow {
    Access last_write;
    bool has_write = false;
    // Reads since the last write, one per thread (cleared by a write that
    // happens-after them all; a racing write reports against each).
    std::vector<Access> reads;
  };

  struct ObjInfo {
    uint32_t class_id = 0;              // 0 = pre-attach (boot image)
    const std::string* site = nullptr;  // allocation site; nullptr = <vm>
  };

  // A deduplicated race: keyed by (kind, first site, second site) -- the
  // static pair -- with the earliest dynamic instance as representative.
  struct RaceAgg {
    std::string cls;        // class of the raced object
    std::string alloc_site; // its allocation site
    uint32_t slot = 0;
    Access first, second;
    uint64_t first_instr = 0;  // earliest second-access instr_index
    uint64_t count = 0;        // dynamic instances folded into this entry
  };

  struct SiteRef {
    const std::string* owner = nullptr;
    const std::string* method = nullptr;
    uint32_t pc = 0;
    int32_t line = -1;
    uint64_t instr_index = 0;
  };

  std::string class_name(uint32_t class_id) const;
  uint64_t id_at(heap::Addr addr);
  const std::string* intern_site(uint32_t tid);
  uint64_t& clock_of(uint32_t tid);
  void vc_join(VectorClock& into, const VectorClock& from);
  // a happened-before the current point of `tid` iff a.clock <= vc[a.tid].
  bool ordered(const Access& a, const VectorClock& vc) const;
  Access current_access(uint32_t tid);
  void report(const char* kind, uint64_t obj_id, uint32_t slot,
              const Access& first, const Access& second);

  const heap::TypeRegistry* types_ = nullptr;  // valid during the run only
  std::vector<VectorClock> vc_;                // per thread
  std::map<uint32_t, VectorClock> lock_vc_;    // per monitor
  std::map<uint32_t, VectorClock> exit_vc_;    // per exited thread
  std::vector<SiteRef> last_instr_;            // by tid
  uint32_t cur_tid_ = 0;  // tid of the most recent InstrEvent (0 = none yet)

  std::map<std::string, uint64_t> site_ids_;  // interned site labels
  std::vector<ObjInfo> objects_;              // by stable id
  std::unordered_map<heap::Addr, uint64_t> live_;  // current addr -> id
  std::unordered_map<uint64_t, Shadow> shadow_;    // (id<<32)|slot
  std::unordered_map<uint32_t, std::string> class_names_;  // id -> name copy

  std::map<std::tuple<std::string, std::string, std::string>, RaceAgg>
      races_;  // (kind, first site, second site) -> aggregate
  uint64_t checks_ = 0;  // accesses examined (reporting only)
  RunInfo run_{};
};

}  // namespace dejavu::obs

#include "src/obs/analysis/race_detector.hpp"

#include <algorithm>

#include "src/obs/json.hpp"
#include "src/vm/vm.hpp"

namespace dejavu::obs {

namespace {

// Only synchronization-kind cross-lane edges order accesses; the dispatch
// rotation and heap-ownership bookkeeping are artifacts of lane execution,
// not of the guest's synchronization structure.
bool is_sync_edge(threads::CrossLaneKind k) {
  switch (k) {
    case threads::CrossLaneKind::kMonitorHandoff:
    case threads::CrossLaneKind::kNotify:
    case threads::CrossLaneKind::kJoinWake:
    case threads::CrossLaneKind::kInterrupt:
      return true;
    case threads::CrossLaneKind::kDispatch:
    case threads::CrossLaneKind::kHeapTransfer:
      return false;
  }
  return false;
}

const std::string kVmSite = "<vm>";
const std::string kBootSite = "<boot>";

}  // namespace

void RaceDetector::on_run_begin(const vm::Vm& vm) {
  types_ = &vm.types();
  // Pre-attach allocations recorded placeholder names; resolve them now
  // (same boot-image wrinkle as HeapChurnAnalyzer).
  for (auto& [id, name] : class_names_) name = class_name(id);
}

std::string RaceDetector::class_name(uint32_t class_id) const {
  switch (class_id) {
    case heap::kClassIdI64Array: return "i64[]";
    case heap::kClassIdRefArray: return "ref[]";
    case heap::kClassIdByteArray: return "byte[]";
    default: break;
  }
  if (types_ != nullptr) return types_->info(class_id).name;
  return "class#" + std::to_string(class_id);
}

uint64_t& RaceDetector::clock_of(uint32_t tid) {
  if (vc_.size() <= tid) vc_.resize(size_t(tid) + 1);
  VectorClock& vc = vc_[tid];
  if (vc.size() <= tid) vc.resize(size_t(tid) + 1, 0);
  // A thread's own component starts at 1: component 0 means "no knowledge
  // of that thread", so a live access must always stamp a nonzero clock.
  if (vc[tid] == 0) vc[tid] = 1;
  return vc[tid];
}

void RaceDetector::vc_join(VectorClock& into, const VectorClock& from) {
  if (into.size() < from.size()) into.resize(from.size(), 0);
  for (size_t i = 0; i < from.size(); ++i)
    into[i] = std::max(into[i], from[i]);
}

bool RaceDetector::ordered(const Access& a, const VectorClock& vc) const {
  return a.tid < vc.size() && vc[a.tid] >= a.clock;
}

void RaceDetector::on_instruction(const vm::InstrEvent& ev) {
  if (last_instr_.size() <= ev.tid) last_instr_.resize(size_t(ev.tid) + 1);
  SiteRef& s = last_instr_[ev.tid];
  s.owner = ev.owner;
  s.method = ev.method;
  s.pc = ev.pc;
  s.line = ev.line;
  s.instr_index = ev.instr_index;
  cur_tid_ = ev.tid;
}

const std::string* RaceDetector::intern_site(uint32_t tid) {
  if (tid >= last_instr_.size() || last_instr_[tid].owner == nullptr)
    return &kVmSite;
  const SiteRef& s = last_instr_[tid];
  std::string label = *s.owner + "." + *s.method + ":" + std::to_string(s.pc);
  auto it = site_ids_.try_emplace(std::move(label), 0).first;
  it->second++;
  return &it->first;
}

void RaceDetector::on_monitor_event(const vm::MonitorEvent& ev) {
  uint32_t t = ev.tid;
  uint32_t m = ev.monitor;
  if (t == threads::kNoThread) return;
  clock_of(t);  // ensure the thread's clock exists
  switch (ev.op) {
    case vm::MonitorOp::kEnterAcquired:
    case vm::MonitorOp::kWaitEnd: {
      // Acquire: everything released into this monitor happened-before us.
      auto it = lock_vc_.find(m);
      if (it != lock_vc_.end()) vc_join(vc_[t], it->second);
      break;
    }
    case vm::MonitorOp::kExit:
    case vm::MonitorOp::kWaitBegin:
    case vm::MonitorOp::kNotifyOne:
    case vm::MonitorOp::kNotifyAll:
      // Release (wait releases the monitor; notify's edge to the woken
      // waiter rides the monitor clock, which the waiter joins at re-entry).
      vc_join(lock_vc_[m], vc_[t]);
      clock_of(t)++;
      break;
    case vm::MonitorOp::kEnterBlocked:
      break;  // contention is not an edge; the acquire will be
  }
}

void RaceDetector::on_thread_event(const vm::ThreadEvent& ev) {
  switch (ev.op) {
    case vm::ThreadOp::kSpawn:
      clock_of(ev.tid);
      clock_of(ev.other);
      // Everything the parent did happens-before the child's first
      // instruction.
      vc_join(vc_[ev.other], vc_[ev.tid]);
      clock_of(ev.tid)++;
      break;
    case vm::ThreadOp::kExit:
      clock_of(ev.tid);
      exit_vc_[ev.tid] = vc_[ev.tid];
      break;
    case vm::ThreadOp::kJoinEnd: {
      clock_of(ev.tid);
      // The target's entire execution happens-before the join's return.
      auto it = exit_vc_.find(ev.other);
      if (it != exit_vc_.end()) {
        vc_join(vc_[ev.tid], it->second);
      } else if (ev.other < vc_.size()) {
        vc_join(vc_[ev.tid], vc_[ev.other]);  // defensive; exit should exist
      }
      break;
    }
  }
}

void RaceDetector::on_cross_lane(const threads::CrossLaneEvent& e) {
  if (!is_sync_edge(e.kind)) return;
  if (e.from == threads::kNoThread || e.to == threads::kNoThread) return;
  clock_of(e.from);
  clock_of(e.to);
  vc_join(vc_[e.to], vc_[e.from]);
  clock_of(e.from)++;
}

void RaceDetector::on_switch(threads::Tid from, threads::Tid,
                             threads::SwitchReason, uint64_t) {
  // Advance the outgoing thread's own component so accesses straddling a
  // schedule switch carry distinct stamps. Deliberately NOT an edge to the
  // incoming thread: the uniprocessor dispatch order is not
  // synchronization, and treating it as such would hide every race.
  if (from != threads::kNoThread) clock_of(from)++;
}

uint64_t RaceDetector::id_at(heap::Addr addr) {
  auto it = live_.find(addr);
  if (it != live_.end()) return it->second;
  uint64_t id = objects_.size();
  objects_.push_back(ObjInfo{});  // pre-attach object: no class, no site
  live_.emplace(addr, id);
  return id;
}

void RaceDetector::on_heap_alloc(const vm::AllocEvent& e) {
  uint64_t id = objects_.size();
  ObjInfo info;
  info.class_id = e.class_id;
  info.site = intern_site(e.tid);
  objects_.push_back(info);
  live_[e.addr] = id;  // the newcomer owns a possibly recycled address
  class_names_.try_emplace(e.class_id, class_name(e.class_id));
}

void RaceDetector::on_heap_move(heap::Addr from, heap::Addr to) {
  auto it = live_.find(from);
  if (it == live_.end()) return;
  uint64_t id = it->second;
  live_.erase(it);
  live_[to] = id;  // shadow state keyed by id follows automatically
}

RaceDetector::Access RaceDetector::current_access(uint32_t tid) {
  Access a;
  a.tid = tid;
  a.site = intern_site(tid);
  a.line = tid < last_instr_.size() ? last_instr_[tid].line : -1;
  a.clock = clock_of(tid);
  a.instr = tid < last_instr_.size() ? last_instr_[tid].instr_index : 0;
  return a;
}

void RaceDetector::report(const char* kind, uint64_t obj_id, uint32_t slot,
                          const Access& first, const Access& second) {
  auto key = std::make_tuple(std::string(kind), *first.site, *second.site);
  auto [it, fresh] = races_.try_emplace(std::move(key));
  RaceAgg& agg = it->second;
  if (fresh) {
    const ObjInfo& obj = objects_[obj_id];
    auto cn = class_names_.find(obj.class_id);
    agg.cls = obj.class_id != 0 && cn != class_names_.end() ? cn->second
                                                            : "<boot>";
    agg.alloc_site = obj.site != nullptr ? *obj.site : kBootSite;
    agg.slot = slot;
    agg.first = first;
    agg.second = second;
    agg.first_instr = second.instr;
  } else {
    agg.first_instr = std::min(agg.first_instr, second.instr);
  }
  agg.count++;
}

void RaceDetector::on_heap_read(heap::Addr obj, uint32_t slot, int64_t,
                                bool) {
  uint32_t t = cur_tid_;
  if (t == threads::kNoThread) return;  // boot traffic; single-threaded
  checks_++;
  uint64_t id = id_at(obj);
  Shadow& s = shadow_[(id << 32) | slot];
  Access cur = current_access(t);
  if (s.has_write && s.last_write.tid != t &&
      !ordered(s.last_write, vc_[t])) {
    report("write-read", id, slot, s.last_write, cur);
  }
  for (Access& r : s.reads) {
    if (r.tid == t) {
      r = cur;  // refresh this thread's read frontier
      return;
    }
  }
  s.reads.push_back(cur);
}

void RaceDetector::on_heap_write(heap::Addr obj, uint32_t slot, int64_t,
                                 bool) {
  uint32_t t = cur_tid_;
  if (t == threads::kNoThread) return;
  checks_++;
  uint64_t id = id_at(obj);
  Shadow& s = shadow_[(id << 32) | slot];
  Access cur = current_access(t);
  if (s.has_write && s.last_write.tid != t &&
      !ordered(s.last_write, vc_[t])) {
    report("write-write", id, slot, s.last_write, cur);
  }
  for (const Access& r : s.reads) {
    if (r.tid != t && !ordered(r, vc_[t]))
      report("read-write", id, slot, r, cur);
  }
  s.last_write = cur;
  s.has_write = true;
  s.reads.clear();
}

std::string RaceDetector::artifact() const {
  uint64_t dynamic = 0;
  for (const auto& [key, agg] : races_) dynamic += agg.count;

  JsonWriter w;
  w.begin_object()
      .kv("schema", "dejavu-races-v1")
      .kv("edge_model", "sync-only (monitor, spawn/join, cross-lane wakes)")
      .kv("race_count", uint64_t(races_.size()))
      .kv("dynamic_count", dynamic)
      .kv("checks", checks_)
      .kv("run_instr_count", run_.instr_count)
      .kv("verified", run_.verified)
      .kv("post_violation", run_.post_violation);

  // Hottest races first; the map key (kind, site, site) breaks ties, so
  // the ordering is fully deterministic.
  std::vector<const std::map<std::tuple<std::string, std::string,
                                        std::string>,
                             RaceAgg>::value_type*> order;
  order.reserve(races_.size());
  for (const auto& kv : races_) order.push_back(&kv);
  std::sort(order.begin(), order.end(), [](const auto* a, const auto* b) {
    if (a->second.count != b->second.count)
      return a->second.count > b->second.count;
    return a->first < b->first;
  });
  w.key("races").begin_array();
  for (const auto* kv : order) {
    const RaceAgg& r = kv->second;
    w.begin_object()
        .kv("kind", std::get<0>(kv->first))
        .kv("class", r.cls)
        .kv("alloc_site", r.alloc_site)
        .kv("slot", uint64_t(r.slot))
        .kv("count", r.count)
        .kv("first_instr", r.first_instr)
        .kv("first_tid", uint64_t(r.first.tid))
        .kv("first_site", *r.first.site)
        .kv("first_line", int64_t(r.first.line))
        .kv("first_clock", r.first.clock)
        .kv("second_tid", uint64_t(r.second.tid))
        .kv("second_site", *r.second.site)
        .kv("second_line", int64_t(r.second.line))
        .kv("second_clock", r.second.clock)
        .end_object();
  }
  w.end_array().end_object();
  return w.str();
}

}  // namespace dejavu::obs

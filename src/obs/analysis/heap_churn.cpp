#include "src/obs/analysis/heap_churn.hpp"

#include <algorithm>

#include "src/obs/json.hpp"
#include "src/vm/vm.hpp"

namespace dejavu::obs {

void HeapChurnAnalyzer::on_run_begin(const vm::Vm& vm) {
  types_ = &vm.types();
  // Boot-image allocations can arrive before the engine attaches (the Vm
  // constructor allocates with hooks already installed); their names were
  // recorded as "class#N" placeholders. Resolve them now.
  for (auto& [id, ts] : by_type_) ts.name = class_name(id);
}

void HeapChurnAnalyzer::on_instruction(const vm::InstrEvent& ev) {
  if (last_instr_.size() <= ev.tid) last_instr_.resize(ev.tid + 1);
  SiteRef& s = last_instr_[ev.tid];
  s.owner = ev.owner;
  s.method = ev.method;
  s.pc = ev.pc;
}

std::string HeapChurnAnalyzer::class_name(uint32_t class_id) const {
  switch (class_id) {
    case heap::kClassIdI64Array: return "i64[]";
    case heap::kClassIdRefArray: return "ref[]";
    case heap::kClassIdByteArray: return "byte[]";
    default: break;
  }
  if (types_ != nullptr) return types_->info(class_id).name;
  return "class#" + std::to_string(class_id);
}

uint64_t HeapChurnAnalyzer::id_at(heap::Addr addr) {
  auto it = live_.find(addr);
  if (it != live_.end()) return it->second;
  // First sight of an object allocated before we attached (boot image).
  uint64_t id = objects_.size();
  ObjStat os;
  os.alloc_addr = addr;
  objects_.push_back(os);
  live_.emplace(addr, id);
  return id;
}

void HeapChurnAnalyzer::on_heap_alloc(const vm::AllocEvent& e) {
  allocs_++;
  alloc_slots_ += e.slots;
  TypeStat& ts = by_type_[e.class_id];
  if (ts.count == 0) ts.name = class_name(e.class_id);
  ts.count++;
  ts.slots += e.slots;

  // Allocation site: the instruction this thread is currently executing.
  // Allocations from VM boot / engine internals run outside any guest
  // instruction and land under "<vm>".
  std::string site = "<vm>";
  if (e.tid < last_instr_.size() && last_instr_[e.tid].owner != nullptr) {
    const SiteRef& s = last_instr_[e.tid];
    site = *s.owner + "." + *s.method + ":" + std::to_string(s.pc);
  }
  auto site_it = by_site_.try_emplace(std::move(site), 0).first;
  site_it->second++;

  uint64_t id = objects_.size();
  ObjStat os;
  os.class_id = e.class_id;
  os.alloc_addr = e.addr;
  os.site = &site_it->first;
  objects_.push_back(os);
  // The address may be recycled from an object that died in an earlier
  // collection; the newcomer owns it now.
  live_[e.addr] = id;
}

void HeapChurnAnalyzer::on_heap_move(heap::Addr from, heap::Addr to) {
  gc_moves_++;
  auto it = live_.find(from);
  if (it == live_.end()) return;  // never-accessed boot object; no identity
  uint64_t id = it->second;
  live_.erase(it);
  // `to` may carry a stale mapping from an object that died in a previous
  // collection cycle; the survivor owns the address now.
  live_[to] = id;
}

void HeapChurnAnalyzer::on_heap_read(heap::Addr obj, uint32_t, int64_t, bool) {
  reads_++;
  objects_[id_at(obj)].reads++;
}

void HeapChurnAnalyzer::on_heap_write(heap::Addr obj, uint32_t, int64_t, bool) {
  writes_++;
  objects_[id_at(obj)].writes++;
}

std::string HeapChurnAnalyzer::artifact() const {
  JsonWriter w;
  w.begin_object()
      .kv("schema", "dejavu-heap-v1")
      .kv("object_identity", "stable (copying-GC forwarding tracked)")
      .kv("allocs", allocs_)
      .kv("alloc_slots", alloc_slots_)
      .kv("reads", reads_)
      .kv("writes", writes_)
      .kv("gc_moves", gc_moves_)
      .kv("run_instr_count", run_.instr_count)
      .kv("verified", run_.verified)
      .kv("post_violation", run_.post_violation);

  std::vector<const TypeStat*> types;
  types.reserve(by_type_.size());
  for (const auto& [id, ts] : by_type_) types.push_back(&ts);
  std::sort(types.begin(), types.end(),
            [](const TypeStat* a, const TypeStat* b) {
              if (a->count != b->count) return a->count > b->count;
              return a->name < b->name;
            });
  w.key("by_type").begin_array();
  for (const TypeStat* ts : types) {
    w.begin_object()
        .kv("class", ts->name)
        .kv("count", ts->count)
        .kv("slots", ts->slots)
        .end_object();
  }
  w.end_array();

  std::vector<std::pair<std::string, uint64_t>> sites(by_site_.begin(),
                                                      by_site_.end());
  std::sort(sites.begin(), sites.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (sites.size() > top_n_) sites.resize(top_n_);
  w.key("top_sites").begin_array();
  for (const auto& [site, count] : sites) {
    w.begin_object().kv("site", site).kv("count", count).end_object();
  }
  w.end_array();

  // Hot objects by stable id; ids are allocation-ordered, so ties resolve
  // deterministically to the earliest-allocated object.
  std::vector<uint64_t> hot;
  hot.reserve(objects_.size());
  for (uint64_t id = 0; id < objects_.size(); ++id) {
    if (objects_[id].reads + objects_[id].writes > 0) hot.push_back(id);
  }
  std::sort(hot.begin(), hot.end(), [this](uint64_t a, uint64_t b) {
    uint64_t ha = objects_[a].reads + objects_[a].writes;
    uint64_t hb = objects_[b].reads + objects_[b].writes;
    if (ha != hb) return ha > hb;
    return a < b;
  });
  if (hot.size() > top_n_) hot.resize(top_n_);
  w.key("hot_objects").begin_array();
  for (uint64_t id : hot) {
    const ObjStat& os = objects_[id];
    // Objects allocated before the analyzer attached (boot image) have no
    // recorded class. Names come from by_type_ copies: types_ is only valid
    // while the run is live, and artifact() may outlive the Vm.
    std::string cls = "<boot>";
    if (os.class_id != 0) {
      auto it = by_type_.find(os.class_id);
      cls = it != by_type_.end() ? it->second.name
                                 : "class#" + std::to_string(os.class_id);
    }
    w.begin_object()
        .kv("id", id)
        .kv("addr", uint64_t(os.alloc_addr))
        .kv("class", cls)
        .kv("site", os.site != nullptr ? *os.site : std::string("<boot>"))
        .kv("reads", os.reads)
        .kv("writes", os.writes)
        .end_object();
  }
  w.end_array().end_object();
  return w.str();
}

}  // namespace dejavu::obs

// The replay-time cache simulator: a configurable two-level set-associative
// LRU cache model fed by the guest heap read/write traffic the analyzer
// fan-out already delivers. Deterministic replay hands the simulator a
// perfect, perturbation-free memory trace -- the same idea as SynchroTrace-
// style trace-driven cache replayers, except the trace costs nothing to
// produce because it *is* the replayed execution.
//
// Addresses are synthetic but stable: every object gets a line-aligned base
// at first sight, in allocation order, and accesses map to base + slot*8.
// The copying collector's forwarding (on_heap_move) keeps identity exact, so
// a GC cannot change line assignments mid-run -- line sharing is a property
// of the guest's access pattern, not of collector timing.
//
// Reports per-site and per-type access/miss counts plus hot shared lines
// (same line touched by more than one thread): lines with >1 thread on >1
// distinct slot are the false-sharing candidates.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/obs/analysis/analysis.hpp"

namespace dejavu::heap {
class TypeRegistry;
}

namespace dejavu::obs {

// Geometry for one set-associative level.
struct CacheLevelConfig {
  uint32_t size_bytes = 0;
  uint32_t ways = 0;
};

class CacheSimAnalyzer : public AnalysisObserver {
 public:
  CacheSimAnalyzer(uint32_t line_bytes, CacheLevelConfig l1,
                   CacheLevelConfig l2, uint32_t top_n = 10);

  const char* name() const override { return "cachesim"; }
  bool wants_memory() const override { return true; }
  // Instructions only pin each thread's current site for attribution.
  bool wants_instructions() const override { return true; }

  void on_run_begin(const vm::Vm& vm) override;
  void on_run_end(const RunInfo& info) override { run_ = info; }
  void on_instruction(const vm::InstrEvent& ev) override;
  void on_heap_alloc(const vm::AllocEvent& e) override;
  void on_heap_move(heap::Addr from, heap::Addr to) override;
  void on_heap_read(heap::Addr obj, uint32_t slot, int64_t value,
                    bool is_ref) override;
  void on_heap_write(heap::Addr obj, uint32_t slot, int64_t value,
                     bool is_ref) override;

  // dejavu-cachesim-v1 JSON.
  std::string artifact() const override;

  uint64_t accesses() const { return accesses_; }
  uint64_t l1_misses() const { return l1_misses_; }
  uint64_t l2_misses() const { return l2_misses_; }
  // Synthetic lines touched by >1 thread. Exposed for the false-sharing
  // corpus tests.
  struct SharedLine {
    uint64_t line = 0;      // synthetic line index
    uint64_t accesses = 0;
    uint32_t threads = 0;   // distinct tids
    uint32_t slots = 0;     // distinct slots touched (>1 => false sharing)
    std::string class_name; // class of the first object mapped to the line
  };
  std::vector<SharedLine> shared_lines() const;

 private:
  // One set-associative LRU level: tags[set * ways + way], age-ordered via
  // a per-way last-use tick (small `ways` makes linear probes cheap).
  struct Level {
    uint32_t sets = 0;
    uint32_t ways = 0;
    std::vector<uint64_t> tags;   // line index + 1; 0 = empty
    std::vector<uint64_t> ticks;  // last-use tick per way slot
    bool access(uint64_t line, uint64_t tick);  // true = hit
  };

  struct SiteStat {
    uint64_t accesses = 0;
    uint64_t l1_misses = 0;
    uint64_t l2_misses = 0;
  };
  struct TypeStat {
    std::string name;
    uint64_t accesses = 0;
    uint64_t l1_misses = 0;
    uint64_t l2_misses = 0;
  };
  struct LineStat {
    uint64_t accesses = 0;
    std::vector<uint32_t> tids;   // distinct, small
    std::vector<uint32_t> slots;  // distinct, small
    uint32_t class_id = 0;        // first object mapped here
  };
  struct SiteRef {
    const std::string* owner = nullptr;
    const std::string* method = nullptr;
    uint32_t pc = 0;
  };

  std::string class_name(uint32_t class_id) const;
  // Stable object id + synthetic base address for the object at `addr`.
  uint64_t id_at(heap::Addr addr, uint32_t slots_hint);
  void touch(heap::Addr obj, uint32_t slot, bool is_write);

  uint32_t line_bytes_;
  Level l1_, l2_;
  uint64_t tick_ = 0;

  const heap::TypeRegistry* types_ = nullptr;  // valid during the run only
  std::unordered_map<heap::Addr, uint64_t> live_;  // current addr -> id
  struct Obj {
    uint64_t base = 0;      // synthetic byte address, line-aligned
    uint32_t class_id = 0;  // 0 = pre-attach
  };
  std::vector<Obj> objects_;  // by stable id
  uint64_t next_base_ = 0;

  std::map<std::string, SiteStat> by_site_;   // "Owner.method:pc"
  std::map<uint32_t, TypeStat> by_type_;      // class id (name resolved)
  std::map<uint64_t, LineStat> lines_;        // synthetic line index
  std::vector<SiteRef> last_instr_;           // by tid
  // Heap events carry no tid; the access happens inside the instruction the
  // current thread is executing, so the last InstrEvent's tid is exact.
  threads::Tid last_tid_ = 0;

  uint32_t l1_bytes_ = 0, l1_ways_ = 0, l2_bytes_ = 0, l2_ways_ = 0;

  uint64_t accesses_ = 0;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  uint64_t l1_misses_ = 0;
  uint64_t l2_misses_ = 0;
  uint32_t top_n_;
  RunInfo run_{};
};

}  // namespace dejavu::obs

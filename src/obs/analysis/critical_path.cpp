#include "src/obs/analysis/critical_path.hpp"

#include <algorithm>

#include "src/obs/json.hpp"

namespace dejavu::obs {

namespace {

// Stable "Owner.method" label for a method-name pointer (the owner pointer
// is remembered per method in owners_).
std::string method_label(const std::string* owner, const std::string* method) {
  if (method == nullptr) return "";
  if (owner == nullptr) return *method;
  return *owner + "." + *method;
}

}  // namespace

CriticalPathAnalyzer::ThreadWall& CriticalPathAnalyzer::wall(
    threads::Tid tid) {
  if (walls_.size() <= tid) walls_.resize(tid + 1);
  walls_[tid].seen = true;
  return walls_[tid];
}

void CriticalPathAnalyzer::park(threads::Tid tid, ParkKind kind, uint64_t at) {
  if (parks_.size() <= tid) parks_.resize(tid + 1);
  parks_[tid] = Park{kind, at, kind != ParkKind::kDone};
}

void CriticalPathAnalyzer::unpark(threads::Tid tid, uint64_t at) {
  if (parks_.size() <= tid || !parks_[tid].parked) return;
  Park& p = parks_[tid];
  uint64_t dt = at >= p.since ? at - p.since : 0;
  ThreadWall& w = wall(tid);
  switch (p.kind) {
    case ParkKind::kRunnable: w.runnable += dt; break;
    case ParkKind::kBlocked: w.blocked += dt; break;
    case ParkKind::kWaiting: w.waiting += dt; break;
    case ParkKind::kDone: break;
  }
  p.parked = false;
}

void CriticalPathAnalyzer::close_segment(uint64_t at) {
  if (current_ == threads::kNoThread) return;
  if (at < seg_start_) at = seg_start_;
  Segment s;
  s.tid = current_;
  s.start = seg_start_;
  s.end = at;
  // Dominant method of the segment: most instructions, ties to the
  // lexicographically smallest label (pointer order would be
  // nondeterministic).
  uint64_t best = 0;
  for (const auto& [method, count] : seg_methods_) {
    std::string label = method_label(owners_[method], method);
    if (count > best || (count == best && !label.empty() &&
                         (s.method.empty() || label < s.method))) {
      best = count;
      s.method = label;
    }
  }
  wall(current_).running += s.end - s.start;
  by_tid_.resize(std::max<size_t>(by_tid_.size(), current_ + 1));
  by_tid_[current_].push_back(segments_.size());
  segments_.push_back(std::move(s));
  seg_methods_.clear();
}

void CriticalPathAnalyzer::push_wake(threads::Tid tid, const char* kind,
                                     threads::Tid from, uint64_t subject,
                                     uint64_t instr) {
  if (wakes_.size() <= tid) wakes_.resize(tid + 1);
  wakes_[tid].push_back(WakeEdge{kind, from, subject, instr});
}

void CriticalPathAnalyzer::mark_parked_wake(threads::Tid tid) {
  if (pending_explicit_.size() <= tid) pending_explicit_.resize(tid + 1);
  pending_explicit_[tid] = true;
}

void CriticalPathAnalyzer::on_instruction(const vm::InstrEvent& ev) {
  if (current_ == threads::kNoThread) {
    // First instruction of the run: the initial thread was never switched
    // in, so the segment starts here.
    current_ = ev.tid;
    seg_start_ = ev.instr_index;
    push_wake(ev.tid, "start", threads::kNoThread, 0, ev.instr_index);
  }
  seg_methods_[ev.method]++;
  owners_[ev.method] = ev.owner;
}

uint64_t CriticalPathAnalyzer::resume_instr(const vm::MonitorEvent& e) {
  // An acquire / wait-end completes the parking episode the thread began
  // at the recorded ParkSite. When a switch happened in between, the
  // current segment started at the resumption dispatch and the wake edge
  // must carry that instant; the event's own instr_index is one past it
  // (the parked instruction re-executes after instr_count_ advanced). A
  // zero-length episode (no switch) keeps the event's position.
  auto it = monitor_park_.find(e.tid);
  if (it == monitor_park_.end() || it->second.monitor != e.monitor)
    return e.instr_index;
  uint64_t begin = it->second.begin;
  monitor_park_.erase(it);
  if (current_ == e.tid && seg_start_ > begin) return seg_start_;
  return e.instr_index;
}

void CriticalPathAnalyzer::on_monitor_event(const vm::MonitorEvent& e) {
  switch (e.op) {
    case vm::MonitorOp::kExit:
      last_release_[e.monitor] =
          WakeEdge{"handoff", e.tid, e.monitor, e.instr_index};
      break;
    case vm::MonitorOp::kNotifyOne:
    case vm::MonitorOp::kNotifyAll:
      if (e.woken > 0)
        last_notify_[e.monitor] =
            WakeEdge{"notify", e.tid, e.monitor, e.instr_index};
      break;
    case vm::MonitorOp::kEnterAcquired:
      // A non-recursive acquire after contention: the thread that released
      // the monitor handed it to us -- the wake edge of this segment.
      if (!e.recursive) {
        auto it = last_release_.find(e.monitor);
        if (it != last_release_.end() && it->second.from != e.tid)
          push_wake(e.tid, "handoff", it->second.from, e.monitor,
                    resume_instr(e));
      }
      break;
    case vm::MonitorOp::kWaitEnd: {
      uint64_t at = resume_instr(e);
      auto it = last_notify_.find(e.monitor);
      if (it != last_notify_.end())
        push_wake(e.tid, "notify", it->second.from, e.monitor, at);
      break;
    }
    case vm::MonitorOp::kEnterBlocked:
    case vm::MonitorOp::kWaitBegin:
      // Remember where the park began: the matching acquire / wait-end is
      // a resumption whose wake must be dated at the segment start, not at
      // the re-executed instruction (which is one past it).
      monitor_park_[e.tid] = ParkSite{e.monitor, e.instr_index};
      break;
  }
}

void CriticalPathAnalyzer::on_switch(threads::Tid from, threads::Tid to,
                                     threads::SwitchReason reason,
                                     uint64_t instr_index) {
  switches_++;
  if (current_ == threads::kNoThread && from != threads::kNoThread) {
    current_ = from;
    seg_start_ = instr_index;
  }
  // The scheduler reports from == kNoThread when the outgoing thread left
  // via a parking path (block / wait / sleep / join / terminate clear the
  // running slot before the next dispatch); the thread that parked is the
  // one we saw running.
  threads::Tid parked = from != threads::kNoThread ? from : current_;
  close_segment(instr_index);
  if (parked != threads::kNoThread) {
    switch (reason) {
      case threads::SwitchReason::kPreempt:
      case threads::SwitchReason::kYield:
        park(parked, ParkKind::kRunnable, instr_index);
        break;
      case threads::SwitchReason::kBlock:
        park(parked, ParkKind::kBlocked, instr_index);
        break;
      case threads::SwitchReason::kWait:
      case threads::SwitchReason::kSleep:
      case threads::SwitchReason::kJoin:
        park(parked, ParkKind::kWaiting, instr_index);
        break;
      case threads::SwitchReason::kTerminate:
        park(parked, ParkKind::kDone, instr_index);
        break;
    }
  }
  if (to != threads::kNoThread) {
    unpark(to, instr_index);
    // The scheduler's own edge is the fallback: explicit wakes take
    // precedence. Edges that fire after the thread resumes (handoff /
    // notify / join) are pushed later and win the backward scan on their
    // own; edges that fired while the thread was parked (spawn /
    // cross-lane) must suppress this push or the switch-in would always
    // shadow them.
    if (to < pending_explicit_.size() && pending_explicit_[to]) {
      pending_explicit_[to] = false;
    } else {
      if (wakes_.size() <= to) wakes_.resize(to + 1);
      wakes_[to].push_back(WakeEdge{"schedule", parked, 0, instr_index});
    }
    current_ = to;
    seg_start_ = instr_index;
  } else {
    current_ = threads::kNoThread;
  }
}

void CriticalPathAnalyzer::on_thread_event(const vm::ThreadEvent& e) {
  switch (e.op) {
    case vm::ThreadOp::kSpawn:
      wall(e.other);
      park(e.other, ParkKind::kRunnable, e.instr_index);
      push_wake(e.other, "spawn", e.tid, 0, e.instr_index);
      mark_parked_wake(e.other);
      break;
    case vm::ThreadOp::kJoinEnd:
      push_wake(e.tid, "join", e.other, 0, e.instr_index);
      break;
    case vm::ThreadOp::kExit:
      break;
  }
}

void CriticalPathAnalyzer::on_cross_lane(const threads::CrossLaneEvent& e) {
  if (e.to == threads::kNoThread || e.to == e.from) return;
  // Cross-lane order events pin inter-lane dependencies; surface them in
  // the walk under a kind tag derived from the order-event kind. seq is the
  // order-stream position, not an instruction index, so the edge borrows
  // the current segment start (the events fan synchronously in replay
  // order, which is all the backward walk needs).
  std::string kind = std::string("xlane:") + threads::cross_lane_kind_name(e.kind);
  auto it = xlane_kinds_.insert(kind).first;
  push_wake(e.to, it->c_str(), e.from, e.subject, seg_start_);
  if (e.to != current_) mark_parked_wake(e.to);
}

void CriticalPathAnalyzer::on_run_end(const RunInfo& info) {
  run_ = info;
  close_segment(info.instr_count);
  current_ = threads::kNoThread;
  // Residual park time up to the end of the run.
  for (threads::Tid tid = 0; tid < parks_.size(); ++tid)
    unpark(tid, info.instr_count);

  // The dependency walk: start at the chronologically last segment and
  // follow each segment's most recent wake edge backwards. Every hop lands
  // on an earlier segment index, so the walk terminates.
  path_.clear();
  hop_kinds_.clear();
  if (segments_.empty()) return;
  size_t cur = segments_.size() - 1;
  path_.push_back(cur);
  while (cur > 0) {
    const Segment& s = segments_[cur];
    // Latest wake edge for s.tid at or before the segment start.
    const WakeEdge* edge = nullptr;
    if (s.tid < wakes_.size()) {
      const std::vector<WakeEdge>& w = wakes_[s.tid];
      for (size_t i = w.size(); i-- > 0;) {
        if (w[i].instr <= s.start) {
          edge = &w[i];
          break;
        }
      }
    }
    size_t next = cur - 1;  // default: the previous segment in time
    if (edge != nullptr && edge->from != threads::kNoThread &&
        edge->from < by_tid_.size()) {
      // The waker's latest segment that had started by the wake.
      const std::vector<size_t>& segs = by_tid_[edge->from];
      for (size_t i = segs.size(); i-- > 0;) {
        if (segs[i] < cur && segments_[segs[i]].start <= edge->instr) {
          next = segs[i];
          break;
        }
      }
    }
    hop_kinds_.push_back(edge != nullptr ? edge->kind : "schedule");
    cur = next;
    path_.push_back(cur);
  }
  std::reverse(path_.begin(), path_.end());
  std::reverse(hop_kinds_.begin(), hop_kinds_.end());
}

std::string CriticalPathAnalyzer::artifact() const {
  JsonWriter w;
  uint64_t path_instrs = 0;
  for (size_t i : path_) path_instrs += segments_[i].end - segments_[i].start;
  w.begin_object()
      .kv("schema", "dejavu-critpath-v1")
      .kv("run_instr_count", run_.instr_count)
      .kv("switches", switches_)
      .kv("critical_path_instrs", path_instrs)
      .kv("verified", run_.verified)
      .kv("post_violation", run_.post_violation);

  // Per-thread wall breakdown, instruction-clock units, tid ascending.
  w.key("threads").begin_array();
  for (threads::Tid tid = 0; tid < walls_.size(); ++tid) {
    const ThreadWall& tw = walls_[tid];
    if (!tw.seen) continue;
    w.begin_object()
        .kv("tid", uint64_t(tid))
        .kv("running", tw.running)
        .kv("runnable", tw.runnable)
        .kv("blocked", tw.blocked)
        .kv("waiting", tw.waiting)
        .end_object();
  }
  w.end_array();

  // The walked path, chronological; hop edge kinds label how segment i
  // depends on segment i-1's thread.
  w.key("critical_path").begin_array();
  for (size_t i = 0; i < path_.size(); ++i) {
    const Segment& s = segments_[path_[i]];
    w.begin_object()
        .kv("tid", uint64_t(s.tid))
        .kv("start", s.start)
        .kv("end", s.end)
        .kv("instrs", s.end - s.start)
        .kv("method", s.method)
        .kv("edge", i == 0 ? "start" : hop_kinds_[i - 1])
        .end_object();
  }
  w.end_array();

  // Per-method attribution of critical-path time (the mergeable view).
  std::map<std::string, uint64_t> by_method;
  for (size_t i : path_) {
    const Segment& s = segments_[i];
    by_method[s.method.empty() ? "<vm>" : s.method] += s.end - s.start;
  }
  std::vector<std::pair<std::string, uint64_t>> methods(by_method.begin(),
                                                        by_method.end());
  std::sort(methods.begin(), methods.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (methods.size() > top_n_) methods.resize(top_n_);
  w.key("by_method").begin_array();
  for (const auto& [m, instrs] : methods)
    w.begin_object().kv("method", m).kv("instrs", instrs).end_object();
  w.end_array();

  // Edge-kind histogram over the walked path (mergeable).
  std::map<std::string, uint64_t> kinds;
  for (const char* k : hop_kinds_) kinds[k]++;
  w.key("edge_kinds").begin_array();
  for (const auto& [k, count] : kinds)
    w.begin_object().kv("kind", k).kv("count", count).end_object();
  w.end_array();

  w.end_object();
  return w.str();
}

}  // namespace dejavu::obs

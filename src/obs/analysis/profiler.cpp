#include "src/obs/analysis/profiler.hpp"

#include <algorithm>

#include "src/bytecode/opcodes.hpp"
#include "src/obs/json.hpp"

namespace dejavu::obs {

ReplayProfiler::MethodStat& ReplayProfiler::stat_for(const vm::InstrEvent& ev) {
  auto it = methods_.find(ev.method);
  if (it == methods_.end()) {
    MethodStat ms;
    ms.name = *ev.owner + "." + *ev.method;
    it = methods_.emplace(ev.method, std::move(ms)).first;
  }
  return it->second;
}

void ReplayProfiler::rebuild_slot(ThreadShadow& sh, uint32_t tid) {
  std::string joined = "t" + std::to_string(tid);
  for (const MethodStat* ms : sh.stack) {
    joined += ';';
    joined += ms->name;
  }
  // unordered_map values are pointer-stable across rehash, so caching the
  // counter's address is safe until the map entry is erased (never).
  sh.slot = &collapsed_[joined];
}

void ReplayProfiler::on_instruction(const vm::InstrEvent& ev) {
  total_instructions_++;
  MethodStat& ms = stat_for(ev);
  ms.instructions++;
  PcStat& ps = ms.pcs[ev.pc];
  ps.count++;
  ps.opcode = ev.opcode;
  ps.line = ev.line;
  last_method_ = &ms;

  if (shadows_.size() <= ev.tid) shadows_.resize(ev.tid + 1);
  ThreadShadow& sh = shadows_[ev.tid];
  bool changed = false;
  while (sh.stack.size() > ev.frame_depth) {
    sh.stack.pop_back();
    changed = true;
  }
  if (sh.stack.size() == ev.frame_depth && !sh.stack.empty() &&
      sh.stack.back() != &ms) {
    sh.stack.back() = &ms;
    changed = true;
  }
  while (sh.stack.size() < ev.frame_depth) {
    sh.stack.push_back(&ms);
    changed = true;
  }
  if (changed || sh.slot == nullptr) rebuild_slot(sh, ev.tid);
  (*sh.slot)++;
}

void ReplayProfiler::on_yield_point(uint64_t, bool) {
  total_yield_points_++;
  // A yield point belongs to the instruction stream around it; attribute it
  // to the most recently executed method (exact for backedge yield points,
  // off by one frame for method prologues -- documented in DESIGN.md).
  if (last_method_ != nullptr) last_method_->yield_points++;
}

std::string ReplayProfiler::artifact() const {
  std::vector<const MethodStat*> order;
  order.reserve(methods_.size());
  for (const auto& [k, ms] : methods_) order.push_back(&ms);
  std::sort(order.begin(), order.end(),
            [](const MethodStat* a, const MethodStat* b) {
              if (a->instructions != b->instructions)
                return a->instructions > b->instructions;
              return a->name < b->name;
            });

  JsonWriter w;
  w.begin_object()
      .kv("schema", "dejavu-profile-v1")
      .kv("total_instructions", total_instructions_)
      .kv("total_yield_points", total_yield_points_)
      .kv("run_instr_count", run_.instr_count)
      .kv("run_logical_clock", run_.logical_clock)
      .kv("verified", run_.verified)
      .kv("post_violation", run_.post_violation);
  w.key("methods").begin_array();
  for (const MethodStat* ms : order) {
    w.begin_object()
        .kv("name", ms->name)
        .kv("instructions", ms->instructions)
        .kv("yield_points", ms->yield_points);
    std::vector<std::pair<uint32_t, const PcStat*>> pcs;
    pcs.reserve(ms->pcs.size());
    for (const auto& [pc, st] : ms->pcs) pcs.emplace_back(pc, &st);
    std::sort(pcs.begin(), pcs.end(), [](const auto& a, const auto& b) {
      if (a.second->count != b.second->count)
        return a.second->count > b.second->count;
      return a.first < b.first;
    });
    if (pcs.size() > top_n_) pcs.resize(top_n_);
    w.key("hot_pcs").begin_array();
    for (const auto& [pc, st] : pcs) {
      w.begin_object()
          .kv("pc", uint64_t(pc))
          .kv("op", bytecode::op_name(bytecode::Op(st->opcode)))
          .kv("line", int64_t(st->line))
          .kv("count", st->count)
          .end_object();
    }
    w.end_array().end_object();
  }
  w.end_array().end_object();
  return w.str();
}

std::string ReplayProfiler::collapsed() const {
  std::vector<std::pair<std::string, uint64_t>> lines(collapsed_.begin(),
                                                      collapsed_.end());
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& [stack, count] : lines) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

}  // namespace dejavu::obs

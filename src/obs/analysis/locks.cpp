#include "src/obs/analysis/locks.hpp"

#include <algorithm>

#include "src/obs/json.hpp"

namespace dejavu::obs {

namespace {
void erase_one(std::vector<uint32_t>& v, uint32_t m) {
  auto it = std::find(v.rbegin(), v.rend(), m);
  if (it != v.rend()) v.erase(std::next(it).base());
}
}  // namespace

void LockContentionAnalyzer::on_monitor_event(const vm::MonitorEvent& e) {
  MonitorStat& st = mons_[e.monitor];
  PerThread& pt = tm_[tm_key(e.tid, e.monitor)];
  switch (e.op) {
    case vm::MonitorOp::kEnterBlocked:
      st.contended_blocks++;
      // Barging can park the same acquire twice; keep the earliest start so
      // block time spans the whole contended acquisition.
      if (!pt.blocked) {
        pt.blocked = true;
        pt.block_start = e.instr_index;
      }
      if (e.holder != threads::kNoThread)
        wait_edges_[{e.tid, e.holder, e.monitor}]++;
      blocked_on_[e.tid] = e.monitor;
      if (e.holder != threads::kNoThread)
        detect_cycle(e.tid, e.monitor, e.holder, e.instr_index);
      break;
    case vm::MonitorOp::kEnterAcquired: {
      if (pt.blocked) {
        uint64_t d = e.instr_index - pt.block_start;
        st.block_total += d;
        st.block_max = std::max(st.block_max, d);
        pt.blocked = false;
      }
      blocked_on_.erase(e.tid);
      if (e.recursive) {
        st.recursive_acquires++;
        pt.depth++;
      } else {
        st.acquires++;
        pt.depth = 1;
        pt.hold_start = e.instr_index;
        holder_[e.monitor] = e.tid;
        std::vector<uint32_t>& held = held_[e.tid];
        for (uint32_t outer : held) order_pairs_.insert({outer, e.monitor});
        held.push_back(e.monitor);
      }
      break;
    }
    case vm::MonitorOp::kExit:
      if (pt.depth > 0 && --pt.depth == 0) {
        uint64_t d = e.instr_index - pt.hold_start;
        st.hold_total += d;
        st.hold_max = std::max(st.hold_max, d);
        erase_one(held_[e.tid], e.monitor);
        auto h = holder_.find(e.monitor);
        if (h != holder_.end() && h->second == e.tid) holder_.erase(h);
      }
      break;
    case vm::MonitorOp::kWaitBegin:
      // wait releases the monitor whatever the recursion depth: close the
      // hold period. (The interrupted-before-wait case emits WaitBegin and
      // WaitEnd at the same instruction, which reopens it with zero loss.)
      pt.wait_start = e.instr_index;
      pt.saved_depth = pt.depth;
      if (pt.depth > 0) {
        uint64_t d = e.instr_index - pt.hold_start;
        st.hold_total += d;
        st.hold_max = std::max(st.hold_max, d);
        pt.depth = 0;
        erase_one(held_[e.tid], e.monitor);
        auto h = holder_.find(e.monitor);
        if (h != holder_.end() && h->second == e.tid) holder_.erase(h);
      }
      break;
    case vm::MonitorOp::kWaitEnd: {
      st.waits++;
      uint64_t d = e.instr_index - pt.wait_start;
      st.wait_total += d;
      st.wait_max = std::max(st.wait_max, d);
      pt.depth = pt.saved_depth > 0 ? pt.saved_depth : 1;
      pt.hold_start = e.instr_index;
      holder_[e.monitor] = e.tid;
      held_[e.tid].push_back(e.monitor);
      break;
    }
    case vm::MonitorOp::kNotifyOne:
    case vm::MonitorOp::kNotifyAll:
      st.notify_ops++;
      st.woken += e.woken;
      break;
  }
}

void LockContentionAnalyzer::detect_cycle(uint32_t tid, uint32_t monitor,
                                          uint32_t holder,
                                          uint64_t instr_index) {
  // Chain: tid --blocked on--> monitor --held by--> holder --blocked
  // on--> ... A cycle back to `tid` means every thread on it is parked
  // waiting for the next one: deadlock-imminent.
  std::vector<uint32_t> tids{tid};
  std::vector<uint32_t> mons{monitor};
  uint32_t cur = holder;
  while (cur != tid) {
    if (std::find(tids.begin(), tids.end(), cur) != tids.end()) return;
    auto b = blocked_on_.find(cur);
    if (b == blocked_on_.end()) return;  // holder is runnable; no cycle
    tids.push_back(cur);
    mons.push_back(b->second);
    auto h = holder_.find(b->second);
    if (h == holder_.end()) return;  // monitor in flight between events
    cur = h->second;
  }

  // Canonicalize: rotate so the smallest tid leads, so the same cycle
  // observed from any participant dedups to one warning.
  size_t pivot = size_t(std::min_element(tids.begin(), tids.end()) -
                        tids.begin());
  std::rotate(tids.begin(), tids.begin() + pivot, tids.end());
  std::rotate(mons.begin(), mons.begin() + pivot, mons.end());

  std::string key;
  for (size_t i = 0; i < tids.size(); ++i)
    key += std::to_string(tids[i]) + ":" + std::to_string(mons[i]) + ";";
  DeadlockWarning& w = cycles_[key];
  if (w.count == 0) {
    w.tids = std::move(tids);
    w.monitors = std::move(mons);
    w.first_instr = instr_index;
  }
  w.count++;
}

std::vector<LockContentionAnalyzer::DeadlockWarning>
LockContentionAnalyzer::deadlock_warnings() const {
  std::vector<DeadlockWarning> out;
  out.reserve(cycles_.size());
  for (const auto& [key, w] : cycles_) out.push_back(w);
  return out;
}

std::vector<std::pair<uint32_t, uint32_t>> LockContentionAnalyzer::inversions()
    const {
  std::vector<std::pair<uint32_t, uint32_t>> out;
  for (const auto& [a, b] : order_pairs_) {
    if (a < b && order_pairs_.count({b, a}) != 0) out.emplace_back(a, b);
  }
  return out;
}

std::string LockContentionAnalyzer::artifact() const {
  std::vector<std::pair<uint32_t, const MonitorStat*>> order;
  order.reserve(mons_.size());
  for (const auto& [id, st] : mons_) order.emplace_back(id, &st);
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  JsonWriter w;
  w.begin_object()
      .kv("schema", "dejavu-locks-v1")
      .kv("duration_unit", "instructions")
      .kv("run_instr_count", run_.instr_count)
      .kv("verified", run_.verified)
      .kv("post_violation", run_.post_violation);
  w.key("monitors").begin_array();
  for (const auto& [id, st] : order) {
    w.begin_object()
        .kv("id", uint64_t(id))
        .kv("acquires", st->acquires)
        .kv("recursive_acquires", st->recursive_acquires)
        .kv("contended_blocks", st->contended_blocks)
        .kv("hold_total", st->hold_total)
        .kv("hold_max", st->hold_max)
        .kv("block_total", st->block_total)
        .kv("block_max", st->block_max)
        .kv("waits", st->waits)
        .kv("wait_total", st->wait_total)
        .kv("wait_max", st->wait_max)
        .kv("notify_ops", st->notify_ops)
        .kv("woken", st->woken)
        .end_object();
  }
  w.end_array();
  w.key("wait_edges").begin_array();
  for (const auto& [edge, count] : wait_edges_) {
    w.begin_object()
        .kv("blocked", uint64_t(std::get<0>(edge)))
        .kv("holder", uint64_t(std::get<1>(edge)))
        .kv("monitor", uint64_t(std::get<2>(edge)))
        .kv("count", count)
        .end_object();
  }
  w.end_array();
  w.key("inversions").begin_array();
  for (const auto& [a, b] : inversions()) {
    w.begin_object().kv("a", uint64_t(a)).kv("b", uint64_t(b)).end_object();
  }
  w.end_array();
  w.key("deadlock_warnings").begin_array();
  for (const auto& [key, c] : cycles_) {
    w.begin_object();
    w.key("tids").begin_array();
    for (uint32_t t : c.tids) w.value(uint64_t(t));
    w.end_array();
    w.key("monitors").begin_array();
    for (uint32_t m : c.monitors) w.value(uint64_t(m));
    w.end_array();
    w.kv("first_instr", c.first_instr).kv("count", c.count).end_object();
  }
  w.end_array().end_object();
  return w.str();
}

}  // namespace dejavu::obs

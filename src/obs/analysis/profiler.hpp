// The replay profiler: attributes instruction and yield-point costs per
// method and per pc, entirely from the replayed run. Deterministic replay
// makes this an *exact* profile (every instruction is counted, not sampled)
// of the recorded execution -- and because it runs at replay time it costs
// the recorded application nothing.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/obs/analysis/analysis.hpp"

namespace dejavu::obs {

class ReplayProfiler : public AnalysisObserver {
 public:
  explicit ReplayProfiler(uint32_t top_n = 10) : top_n_(top_n) {}

  const char* name() const override { return "profiler"; }
  bool wants_instructions() const override { return true; }

  void on_instruction(const vm::InstrEvent& ev) override;
  void on_yield_point(uint64_t logical_clock, bool switched) override;
  void on_run_end(const RunInfo& info) override { run_ = info; }

  // dejavu-profile-v1 JSON.
  std::string artifact() const override;
  // Brendan Gregg collapsed-stack text: "t1;Main.main;Main.work 123" per
  // line, one line per distinct stack, suitable for flamegraph.pl.
  std::string collapsed() const;

 private:
  struct PcStat {
    uint64_t count = 0;
    uint8_t opcode = 0;
    int32_t line = -1;
  };
  struct MethodStat {
    std::string name;  // "Owner.method"
    uint64_t instructions = 0;
    uint64_t yield_points = 0;
    std::unordered_map<uint32_t, PcStat> pcs;
  };
  // Shadow call stack per thread, reconstructed from frame_depth deltas
  // (every InstrEvent's depth differs from the previous one in that thread
  // by at most one frame).
  struct ThreadShadow {
    std::vector<const MethodStat*> stack;
    uint64_t* slot = nullptr;  // cached collapsed-stack counter
  };

  MethodStat& stat_for(const vm::InstrEvent& ev);
  void rebuild_slot(ThreadShadow& sh, uint32_t tid);

  // Keyed by the method-name string's address: unique per MethodDef and
  // stable for the life of the run (the entries copy the names they need).
  std::unordered_map<const std::string*, MethodStat> methods_;
  std::unordered_map<std::string, uint64_t> collapsed_;
  std::vector<ThreadShadow> shadows_;  // by tid
  MethodStat* last_method_ = nullptr;  // yield-point attribution
  uint32_t top_n_;
  uint64_t total_instructions_ = 0;
  uint64_t total_yield_points_ = 0;
  RunInfo run_{};
};

}  // namespace dejavu::obs

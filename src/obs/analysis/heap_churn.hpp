// The heap-churn analyzer: allocation volume per type and per allocation
// site, plus read/write heat per object, with a top-N hot-object report.
//
// Caveat (documented in the artifact): objects are keyed by allocation-time
// address. Under the copying collector addresses move at GC, so post-GC
// accesses accrue to the object's *new* address; per-object heat is exact
// between collections and best-effort across them. (Run with mark-sweep for
// stable identities.)
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/obs/analysis/analysis.hpp"

namespace dejavu::obs {

class HeapChurnAnalyzer : public AnalysisObserver {
 public:
  explicit HeapChurnAnalyzer(uint32_t top_n = 10) : top_n_(top_n) {}

  const char* name() const override { return "heap"; }
  bool wants_memory() const override { return true; }
  // Subscribes to instructions only to remember each thread's current
  // execution point, which becomes the allocation site label.
  bool wants_instructions() const override { return true; }

  void on_run_begin(const vm::Vm& vm) override;
  void on_run_end(const RunInfo& info) override { run_ = info; }
  void on_instruction(const vm::InstrEvent& ev) override;
  void on_heap_alloc(const vm::AllocEvent& e) override;
  void on_heap_read(heap::Addr obj, uint32_t slot, int64_t value,
                    bool is_ref) override;
  void on_heap_write(heap::Addr obj, uint32_t slot, int64_t value,
                     bool is_ref) override;

  // dejavu-heap-v1 JSON.
  std::string artifact() const override;

  uint64_t alloc_count() const { return allocs_; }

 private:
  struct TypeStat {
    std::string name;
    uint64_t count = 0;
    uint64_t slots = 0;
  };
  struct ObjStat {
    uint32_t class_id = 0;
    uint64_t reads = 0;
    uint64_t writes = 0;
  };
  struct SiteRef {
    const std::string* owner = nullptr;
    const std::string* method = nullptr;
    uint32_t pc = 0;
  };

  std::string class_name(uint32_t class_id) const;

  const heap::TypeRegistry* types_ = nullptr;  // valid during the run only
  std::unordered_map<uint32_t, TypeStat> by_type_;
  std::map<std::string, uint64_t> by_site_;  // "Owner.method:pc" -> count
  std::unordered_map<uint64_t, ObjStat> objects_;
  std::vector<SiteRef> last_instr_;  // by tid
  uint64_t allocs_ = 0;
  uint64_t alloc_slots_ = 0;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  uint32_t top_n_;
  RunInfo run_{};
};

}  // namespace dejavu::obs

// The heap-churn analyzer: allocation volume per type and per allocation
// site, plus read/write heat per object, with a top-N hot-object report.
//
// Object identity is stable across the whole run: each allocation gets a
// stable id, and a live-address map follows the copying collector's
// forwarding (on_heap_move) so post-GC accesses accrue to the same object.
// Per-object heat is therefore exact under both collectors.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/obs/analysis/analysis.hpp"

namespace dejavu::obs {

class HeapChurnAnalyzer : public AnalysisObserver {
 public:
  explicit HeapChurnAnalyzer(uint32_t top_n = 10) : top_n_(top_n) {}

  const char* name() const override { return "heap"; }
  bool wants_memory() const override { return true; }
  // Subscribes to instructions only to remember each thread's current
  // execution point, which becomes the allocation site label.
  bool wants_instructions() const override { return true; }

  void on_run_begin(const vm::Vm& vm) override;
  void on_run_end(const RunInfo& info) override { run_ = info; }
  void on_instruction(const vm::InstrEvent& ev) override;
  void on_heap_alloc(const vm::AllocEvent& e) override;
  void on_heap_move(heap::Addr from, heap::Addr to) override;
  void on_heap_read(heap::Addr obj, uint32_t slot, int64_t value,
                    bool is_ref) override;
  void on_heap_write(heap::Addr obj, uint32_t slot, int64_t value,
                     bool is_ref) override;

  // dejavu-heap-v1 JSON.
  std::string artifact() const override;

  uint64_t alloc_count() const { return allocs_; }
  // Objects with distinct identities (allocations seen + pre-attach objects
  // discovered through accesses). Exposed for the GC-identity tests.
  uint64_t tracked_objects() const { return objects_.size(); }
  uint64_t gc_moves() const { return gc_moves_; }

 private:
  struct TypeStat {
    std::string name;
    uint64_t count = 0;
    uint64_t slots = 0;
  };
  struct ObjStat {
    uint32_t class_id = 0;     // 0 = allocated before the analyzer attached
    heap::Addr alloc_addr = 0; // address at allocation (stable label)
    // Allocation site ("Owner.method:pc"); points at the by_site_ map key
    // (node-based, so stable). nullptr = pre-attach object, no known site.
    const std::string* site = nullptr;
    uint64_t reads = 0;
    uint64_t writes = 0;
  };
  struct SiteRef {
    const std::string* owner = nullptr;
    const std::string* method = nullptr;
    uint32_t pc = 0;
  };

  std::string class_name(uint32_t class_id) const;
  // Stable id for the object currently at `addr` (created on first sight).
  uint64_t id_at(heap::Addr addr);

  const heap::TypeRegistry* types_ = nullptr;  // valid during the run only
  std::unordered_map<uint32_t, TypeStat> by_type_;
  std::map<std::string, uint64_t> by_site_;  // "Owner.method:pc" -> count
  std::vector<ObjStat> objects_;             // indexed by stable id
  std::unordered_map<heap::Addr, uint64_t> live_;  // current addr -> id
  std::vector<SiteRef> last_instr_;  // by tid
  uint64_t allocs_ = 0;
  uint64_t alloc_slots_ = 0;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  uint64_t gc_moves_ = 0;
  uint32_t top_n_;
  RunInfo run_{};
};

}  // namespace dejavu::obs

// The lock-contention analyzer: per-monitor hold/wait statistics, the
// wait-for graph, and potential lock-order inversions, all measured in
// instruction-count units of the replayed run (deterministic replay makes
// these durations exact and reproducible, unlike wall-clock profiling of a
// live run).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "src/obs/analysis/analysis.hpp"

namespace dejavu::obs {

class LockContentionAnalyzer : public AnalysisObserver {
 public:
  const char* name() const override { return "locks"; }
  bool wants_monitors() const override { return true; }

  void on_monitor_event(const vm::MonitorEvent& e) override;
  void on_run_end(const RunInfo& info) override { run_ = info; }

  // dejavu-locks-v1 JSON.
  std::string artifact() const override;

  // Potential inversions: unordered monitor pairs acquired in both nesting
  // orders somewhere in the run. Exposed for tests.
  std::vector<std::pair<uint32_t, uint32_t>> inversions() const;

  // A cycle observed in the *runtime* wait-for graph: tids[i] is parked on
  // monitors[i], whose holder is tids[i+1] (wrapping). Canonicalized to
  // start at the smallest tid; counted per distinct cycle.
  struct DeadlockWarning {
    std::vector<uint32_t> tids;
    std::vector<uint32_t> monitors;
    uint64_t first_instr = 0;  // instr index of the first observation
    uint64_t count = 0;
  };
  // Deterministic order (keyed by the canonical cycle). Exposed for tests.
  std::vector<DeadlockWarning> deadlock_warnings() const;

 private:
  struct MonitorStat {
    uint64_t acquires = 0;            // non-recursive acquisitions
    uint64_t recursive_acquires = 0;
    uint64_t contended_blocks = 0;    // monitorenter had to park
    uint64_t hold_total = 0;          // instr units, acquire -> full release
    uint64_t hold_max = 0;
    uint64_t block_total = 0;         // instr units, park -> acquire
    uint64_t block_max = 0;
    uint64_t waits = 0;               // Object.wait completions
    uint64_t wait_total = 0;          // instr units, park -> re-acquired
    uint64_t wait_max = 0;
    uint64_t notify_ops = 0;
    uint64_t woken = 0;
  };
  // Per (tid, monitor) in-flight state.
  struct PerThread {
    bool blocked = false;
    uint64_t block_start = 0;
    uint32_t depth = 0;       // our view of the recursion depth
    uint64_t hold_start = 0;
    uint64_t wait_start = 0;
    uint32_t saved_depth = 0; // recursion depth across an Object.wait
  };

  static uint64_t tm_key(uint32_t tid, uint32_t mon) {
    return (uint64_t(tid) << 32) | mon;
  }

  // Walks holder/blocked-on chains from a freshly parked thread and records
  // any cycle that returns to it.
  void detect_cycle(uint32_t tid, uint32_t monitor, uint32_t holder,
                    uint64_t instr_index);

  std::unordered_map<uint32_t, MonitorStat> mons_;
  std::unordered_map<uint64_t, PerThread> tm_;
  // Instantaneous wait-for graph state: who holds each monitor right now,
  // and which monitor each parked thread is blocked on.
  std::unordered_map<uint32_t, uint32_t> holder_;      // monitor -> tid
  std::unordered_map<uint32_t, uint32_t> blocked_on_;  // tid -> monitor
  // Canonical cycle serialization -> warning (ordered for the artifact).
  std::map<std::string, DeadlockWarning> cycles_;
  // (blocked tid, holder tid, monitor) -> count. Ordered for deterministic
  // artifact output.
  std::map<std::tuple<uint32_t, uint32_t, uint32_t>, uint64_t> wait_edges_;
  // Monitors currently held per thread, in acquisition order.
  std::unordered_map<uint32_t, std::vector<uint32_t>> held_;
  // Observed nesting orders: (outer, inner).
  std::set<std::pair<uint32_t, uint32_t>> order_pairs_;
  RunInfo run_{};
};

}  // namespace dejavu::obs

// Minimal JSON support for the observability layer.
//
// Telemetry artifacts (metric snapshots, Chrome trace_event timelines,
// bench sidecars) are emitted through JsonWriter -- a small streaming
// writer with correct string escaping and no intermediate DOM. The
// matching JsonValue parser exists for the consumers we own: the schema
// checker behind `tools/obs_schema_check` and the tests that assert the
// emitted artifacts are well-formed. Neither side aims to be a general
// JSON library; both cover exactly the JSON this repo produces.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dejavu::obs {

std::string json_escape(const std::string& s);

// Streaming writer. Usage:
//   JsonWriter w;
//   w.begin_object().key("n").value(int64_t{3}).end_object();
//   w.str();
// Commas and key/value ordering are handled by the writer; emitting a
// structurally invalid document (value with no pending key inside an
// object, unbalanced end_*) throws VmError.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(const std::string& k);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(int64_t v);
  JsonWriter& value(uint64_t v);
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& null();
  // Splices a pre-rendered JSON document in value position (embedding one
  // artifact inside another, e.g. merged analyzer docs in a farm report).
  // The caller is responsible for `json` being well-formed.
  JsonWriter& raw(const std::string& json);

  // Convenience: key + value in one call.
  template <typename T>
  JsonWriter& kv(const std::string& k, T v) {
    return key(k).value(v);
  }

  const std::string& str() const;

 private:
  enum class Ctx : uint8_t { kTop, kObject, kArray };
  void before_value();
  void push(Ctx c);
  void pop(Ctx c);

  std::string out_;
  std::vector<Ctx> stack_{Ctx::kTop};
  std::vector<bool> has_items_{false};
  bool key_pending_ = false;
  bool done_ = false;
};

// Parsed JSON value. Object member order is preserved (useful for golden
// comparisons); duplicate keys keep the last occurrence on lookup.
struct JsonValue {
  enum class Type : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& k) const;
};

// Parses one JSON document (trailing whitespace allowed, nothing else).
// Throws VmError with a byte offset on malformed input.
JsonValue parse_json(const std::string& text);

}  // namespace dejavu::obs

#include "src/obs/metrics.hpp"

#include "src/common/check.hpp"
#include "src/obs/json.hpp"

namespace dejavu::obs {

Histogram::Histogram(std::vector<uint64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0) {
  for (size_t i = 1; i < bounds_.size(); ++i)
    DV_CHECK_MSG(bounds_[i - 1] < bounds_[i],
                 "histogram bounds must be ascending");
}

void Histogram::record(uint64_t v) {
  count_++;
  sum_ += v;
  // Buckets are few (tens); linear scan beats binary search at this size
  // and keeps the hot path branch-predictable.
  size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) i++;
  buckets_[i]++;
}

const char* metric_kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

const MetricSample* MetricsSnapshot::find(const std::string& name) const {
  for (const MetricSample& s : samples) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::string MetricsSnapshot::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "dejavu-metrics-v1");
  w.key("metrics").begin_array();
  for (const MetricSample& s : samples) {
    w.begin_object();
    w.kv("name", s.name);
    w.kv("kind", metric_kind_name(s.kind));
    switch (s.kind) {
      case MetricKind::kCounter:
        w.kv("value", s.value);
        break;
      case MetricKind::kGauge:
        w.kv("value", s.gauge);
        break;
      case MetricKind::kHistogram: {
        w.kv("count", s.count);
        w.kv("sum", s.sum);
        w.key("bounds").begin_array();
        for (uint64_t b : s.bounds) w.value(b);
        w.end_array();
        w.key("buckets").begin_array();
        for (uint64_t b : s.buckets) w.value(b);
        w.end_array();
        break;
      }
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void merge_snapshots(MetricsSnapshot* into, const MetricsSnapshot& from) {
  for (const MetricSample& s : from.samples) {
    MetricSample* dst = nullptr;
    for (MetricSample& d : into->samples) {
      if (d.name == s.name) {
        dst = &d;
        break;
      }
    }
    if (dst == nullptr) {
      into->samples.push_back(s);
      continue;
    }
    DV_CHECK_MSG(dst->kind == s.kind, "metric kind mismatch for " << s.name);
    switch (s.kind) {
      case MetricKind::kCounter:
        dst->value += s.value;
        break;
      case MetricKind::kGauge:
        dst->gauge = s.gauge;
        break;
      case MetricKind::kHistogram:
        DV_CHECK_MSG(dst->bounds == s.bounds,
                     "histogram bounds mismatch for " << s.name);
        dst->count += s.count;
        dst->sum += s.sum;
        for (size_t i = 0; i < s.buckets.size(); ++i)
          dst->buckets[i] += s.buckets[i];
        break;
    }
  }
}

MetricRegistry::Entry* MetricRegistry::find_entry(const std::string& name) {
  for (Entry& e : order_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

Counter* MetricRegistry::counter(const std::string& name) {
  if (Entry* e = find_entry(name)) {
    DV_CHECK_MSG(e->kind == MetricKind::kCounter,
                 name << " already registered with another kind");
    return static_cast<Counter*>(e->slot);
  }
  counters_.emplace_back();
  order_.push_back({name, MetricKind::kCounter, &counters_.back()});
  return &counters_.back();
}

Gauge* MetricRegistry::gauge(const std::string& name) {
  if (Entry* e = find_entry(name)) {
    DV_CHECK_MSG(e->kind == MetricKind::kGauge,
                 name << " already registered with another kind");
    return static_cast<Gauge*>(e->slot);
  }
  gauges_.emplace_back();
  order_.push_back({name, MetricKind::kGauge, &gauges_.back()});
  return &gauges_.back();
}

Histogram* MetricRegistry::histogram(const std::string& name,
                                     std::vector<uint64_t> bounds) {
  if (Entry* e = find_entry(name)) {
    DV_CHECK_MSG(e->kind == MetricKind::kHistogram,
                 name << " already registered with another kind");
    return static_cast<Histogram*>(e->slot);
  }
  histograms_.emplace_back(std::move(bounds));
  order_.push_back({name, MetricKind::kHistogram, &histograms_.back()});
  return &histograms_.back();
}

MetricsSnapshot MetricRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.samples.reserve(order_.size());
  for (const Entry& e : order_) {
    MetricSample s;
    s.name = e.name;
    s.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        s.value = static_cast<const Counter*>(e.slot)->value();
        break;
      case MetricKind::kGauge:
        s.gauge = static_cast<const Gauge*>(e.slot)->value();
        break;
      case MetricKind::kHistogram: {
        const auto* h = static_cast<const Histogram*>(e.slot);
        s.count = h->count();
        s.sum = h->sum();
        s.bounds = h->bounds();
        s.buckets = h->buckets();
        break;
      }
    }
    snap.samples.push_back(std::move(s));
  }
  return snap;
}

std::vector<uint64_t> pow2_bounds(size_t n) {
  std::vector<uint64_t> b(n);
  for (size_t i = 0; i < n; ++i) b[i] = uint64_t(1) << i;
  return b;
}

}  // namespace dejavu::obs

// Timeline -- a ring-buffered recorder of host-side span and instant
// events, exported as Chrome trace_event JSON.
//
// The replay engine emits one event per interesting host-side occurrence:
// engine phases (attach, warmup, record, replay, verify) as spans, thread
// switches (with their `nyp` delta and sync-vs-preemptive reason),
// non-deterministic events, checkpoints, trace-chunk flushes and
// divergences as instants. A finished run's timeline can be written with
// to_chrome_json() and opened directly in Perfetto / chrome://tracing.
//
// Symmetry rules (§2.4) applied to telemetry: the ring is pre-allocated at
// construction, event names and categories are static strings (no
// allocation on the hot path), and nothing here ever touches the guest --
// so enabling the timeline cannot perturb a recording or a replay (the
// obs tests prove trace bytes are identical with it on and off). When the
// ring fills, the oldest events are overwritten and `dropped()` counts
// them: forensics favour the most recent window, like a flight recorder.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dejavu::obs {

struct TimelineEvent {
  enum class Type : uint8_t { kSpanBegin, kSpanEnd, kInstant };

  Type type = Type::kInstant;
  const char* cat = "";   // static string; Chrome "cat"
  const char* name = "";  // static string
  uint64_t ts_us = 0;     // host microseconds since the timeline epoch
  uint64_t logical_clock = 0;
  uint32_t tid = 0;  // guest thread id (0 = engine/VM itself)
  // Up to two numeric args with static-string labels ("" = unused).
  const char* arg0_name = "";
  int64_t arg0 = 0;
  const char* arg1_name = "";
  int64_t arg1 = 0;
};

class Timeline {
 public:
  explicit Timeline(size_t capacity);

  // All emitters are allocation-free.
  void span_begin(const char* cat, const char* name, uint64_t logical_clock,
                  uint32_t tid = 0);
  void span_end(const char* cat, const char* name, uint64_t logical_clock,
                uint32_t tid = 0);
  void instant(const char* cat, const char* name, uint64_t logical_clock,
               uint32_t tid = 0, const char* arg0_name = "", int64_t arg0 = 0,
               const char* arg1_name = "", int64_t arg1 = 0);

  size_t size() const { return size_; }
  size_t capacity() const { return ring_.size(); }
  uint64_t dropped() const { return dropped_; }

  // Events in chronological order (oldest surviving first).
  std::vector<TimelineEvent> snapshot() const;

 private:
  void push(const TimelineEvent& e);
  uint64_t now_us() const;

  std::vector<TimelineEvent> ring_;
  size_t head_ = 0;  // next write position
  size_t size_ = 0;
  uint64_t dropped_ = 0;
  uint64_t epoch_us_;  // steady-clock birth time
};

// Chrome trace_event JSON ("JSON object format": {"traceEvents":[...]}).
// `process_name` labels the pid row in the viewer. Unpaired span events
// are emitted as-is; the viewer tolerates them.
std::string timeline_to_chrome_json(const std::vector<TimelineEvent>& events,
                                    const std::string& process_name);

}  // namespace dejavu::obs

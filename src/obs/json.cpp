#include "src/obs/json.hpp"

#include <cmath>
#include <cstdio>

#include "src/common/check.hpp"

namespace dejavu::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += char(c);
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------- writer

void JsonWriter::push(Ctx c) {
  stack_.push_back(c);
  has_items_.push_back(false);
}

void JsonWriter::pop(Ctx c) {
  DV_CHECK_MSG(stack_.size() > 1 && stack_.back() == c,
               "JsonWriter: unbalanced end");
  DV_CHECK_MSG(!key_pending_, "JsonWriter: dangling key");
  stack_.pop_back();
  has_items_.pop_back();
  if (stack_.back() == Ctx::kTop) done_ = true;
}

void JsonWriter::before_value() {
  DV_CHECK_MSG(!done_, "JsonWriter: document already complete");
  Ctx c = stack_.back();
  if (c == Ctx::kObject) {
    DV_CHECK_MSG(key_pending_, "JsonWriter: object value without a key");
    key_pending_ = false;
  } else {
    if (has_items_.back()) out_ += ',';
  }
  has_items_.back() = true;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  push(Ctx::kObject);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  pop(Ctx::kObject);
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  push(Ctx::kArray);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  pop(Ctx::kArray);
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  DV_CHECK_MSG(stack_.back() == Ctx::kObject && !key_pending_,
               "JsonWriter: key outside an object");
  if (has_items_.back()) out_ += ',';
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no Inf/NaN
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(const std::string& json) {
  before_value();
  out_ += json;
  return *this;
}

const std::string& JsonWriter::str() const {
  DV_CHECK_MSG(done_, "JsonWriter: document incomplete");
  return out_;
}

// ---------------------------------------------------------------- parser

const JsonValue* JsonValue::find(const std::string& k) const {
  if (type != Type::kObject) return nullptr;
  const JsonValue* hit = nullptr;
  for (const auto& [key, v] : members) {
    if (key == k) hit = &v;  // last duplicate wins
  }
  return hit;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& s) : s_(s) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw VmError("json: " + why + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      pos_++;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    pos_++;
  }

  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      pos_++;
      return true;
    }
    return false;
  }

  bool consume_word(const char* w) {
    size_t n = std::char_traits<char>::length(w);
    if (s_.compare(pos_, n, w) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  std::string parse_string_raw() {
    expect('"');
    std::string out;
    while (true) {
      char c = peek();
      pos_++;
      if (c == '"') return out;
      if (c == '\\') {
        char e = peek();
        pos_++;
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
            unsigned v = 0;
            for (int i = 0; i < 4; ++i) {
              char h = s_[pos_++];
              v <<= 4;
              if (h >= '0' && h <= '9') v |= unsigned(h - '0');
              else if (h >= 'a' && h <= 'f') v |= unsigned(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') v |= unsigned(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            // Our writer only emits \u00XX; decode BMP code points as UTF-8.
            if (v < 0x80) {
              out += char(v);
            } else if (v < 0x800) {
              out += char(0xC0 | (v >> 6));
              out += char(0x80 | (v & 0x3F));
            } else {
              out += char(0xE0 | (v >> 12));
              out += char(0x80 | ((v >> 6) & 0x3F));
              out += char(0x80 | (v & 0x3F));
            }
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue parse_value() {
    skip_ws();
    char c = peek();
    JsonValue v;
    if (c == '{') {
      pos_++;
      v.type = JsonValue::Type::kObject;
      skip_ws();
      if (consume('}')) return v;
      while (true) {
        skip_ws();
        std::string key = parse_string_raw();
        skip_ws();
        expect(':');
        v.members.emplace_back(std::move(key), parse_value());
        skip_ws();
        if (consume(',')) continue;
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      pos_++;
      v.type = JsonValue::Type::kArray;
      skip_ws();
      if (consume(']')) return v;
      while (true) {
        v.items.push_back(parse_value());
        skip_ws();
        if (consume(',')) continue;
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.type = JsonValue::Type::kString;
      v.string = parse_string_raw();
      return v;
    }
    if (consume_word("true")) {
      v.type = JsonValue::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_word("false")) {
      v.type = JsonValue::Type::kBool;
      v.boolean = false;
      return v;
    }
    if (consume_word("null")) return v;
    // number
    size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      pos_++;
    if (pos_ == start) fail("unexpected character");
    try {
      v.number = std::stod(s_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    v.type = JsonValue::Type::kNumber;
    return v;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace dejavu::obs

// DivergenceReport -- first-divergence forensics for replay mismatches.
//
// When a replay diverges (schedule mismatch, nd-event mismatch, strict
// symmetry violation) the interesting state is gone by the time the error
// reaches a caller: the engine is torn down during stack unwind. The
// engine therefore captures this report at the violation site -- logical
// clock, remaining yield-point budget, the running thread, the current
// frame with a disassembly window around the faulting pc, the last few
// consumed nd-events and both stream cursors -- and serializes it into the
// thrown ReplayDivergence (an opaque string payload, so src/common need
// not know about obs).
//
// The serialized form is a line-oriented "dvrep 1" block designed to be
// embedded verbatim in fuzz reproducer (.dvfz) files after the "end"
// token, where the case parser ignores it. `dejavu report` extracts and
// renders it back.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dejavu::obs {

// One consumed non-deterministic event, as remembered by the engine's
// recent-event ring at the moment of divergence.
struct NdEventRecord {
  std::string tag;  // "clock", "input", "rand", "native", ...
  uint64_t value = 0;
  uint64_t logical_clock = 0;
};

struct DivergenceReport {
  std::string what;  // the violation message

  // Engine state at the violation site.
  uint64_t logical_clock = 0;
  uint64_t nyp_remaining = 0;
  uint32_t thread = 0;
  std::string thread_name;

  // Current frame (empty class/method if no frame was live).
  std::string frame_class;
  std::string frame_method;
  uint32_t pc = 0;
  uint32_t line = 0;

  // Disassembly window around pc; the faulting instruction is prefixed
  // with "=>". Empty when no frame/method was resolvable.
  std::vector<std::string> disasm;

  // Most recent consumed nd-events, oldest first.
  std::vector<NdEventRecord> recent_events;

  // Trace-stream cursor positions (replay side; zero when recording).
  uint64_t schedule_pos = 0;
  uint64_t schedule_remaining = 0;
  uint64_t events_pos = 0;
  uint64_t events_remaining = 0;

  uint64_t preempt_switches = 0;
  uint64_t checkpoints = 0;

  // Line-oriented "dvrep 1" block (ends with "endrep\n").
  std::string serialize() const;
  // Human-readable rendering for the CLI.
  std::string render() const;
};

// Parses a serialize()d block. Throws VmError on malformed input.
DivergenceReport parse_report(const std::string& text);

// Scans arbitrary text (e.g. a .dvfz reproducer) for an embedded
// "dvrep 1" block; returns true and fills `out` if one parses.
bool extract_report(const std::string& text, DivergenceReport* out);

}  // namespace dejavu::obs

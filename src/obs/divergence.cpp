#include "src/obs/divergence.hpp"

#include <sstream>

#include "src/common/check.hpp"

namespace dejavu::obs {

namespace {

// The block format is line-oriented; free-text fields (`what`, names,
// disasm lines) may contain anything except newlines, which we escape.
std::string escape_line(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unescape_line(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      char n = s[++i];
      if (n == 'n') out += '\n';
      else if (n == 'r') out += '\r';
      else out += n;
    } else {
      out += s[i];
    }
  }
  return out;
}

}  // namespace

std::string DivergenceReport::serialize() const {
  std::ostringstream os;
  os << "dvrep 1\n";
  os << "what " << escape_line(what) << "\n";
  os << "clock " << logical_clock << "\n";
  os << "nyp " << nyp_remaining << "\n";
  os << "thread " << thread << "\n";
  os << "thread_name " << escape_line(thread_name) << "\n";
  os << "frame_class " << escape_line(frame_class) << "\n";
  os << "frame_method " << escape_line(frame_method) << "\n";
  os << "pc " << pc << "\n";
  os << "line " << line << "\n";
  os << "schedule_cursor " << schedule_pos << " " << schedule_remaining
     << "\n";
  os << "events_cursor " << events_pos << " " << events_remaining << "\n";
  os << "preempt_switches " << preempt_switches << "\n";
  os << "checkpoints " << checkpoints << "\n";
  os << "disasm " << disasm.size() << "\n";
  for (const std::string& d : disasm) os << escape_line(d) << "\n";
  os << "recent " << recent_events.size() << "\n";
  for (const NdEventRecord& e : recent_events)
    os << escape_line(e.tag) << " " << e.value << " " << e.logical_clock
       << "\n";
  os << "endrep\n";
  return os.str();
}

namespace {

[[noreturn]] void bad(const std::string& why) {
  throw VmError("dvrep: " + why);
}

uint64_t to_u64(const std::string& s) {
  try {
    return std::stoull(s);
  } catch (const std::exception&) {
    bad("bad number '" + s + "'");
  }
}

// Splits "key rest-of-line"; rest may be empty.
void split_kv(const std::string& line, std::string* key, std::string* rest) {
  size_t sp = line.find(' ');
  if (sp == std::string::npos) {
    *key = line;
    rest->clear();
  } else {
    *key = line.substr(0, sp);
    *rest = line.substr(sp + 1);
  }
}

}  // namespace

DivergenceReport parse_report(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != "dvrep 1")
    bad("missing 'dvrep 1' header");

  DivergenceReport r;
  bool ended = false;
  while (std::getline(is, line)) {
    if (line == "endrep") {
      ended = true;
      break;
    }
    std::string key, rest;
    split_kv(line, &key, &rest);
    if (key == "what") r.what = unescape_line(rest);
    else if (key == "clock") r.logical_clock = to_u64(rest);
    else if (key == "nyp") r.nyp_remaining = to_u64(rest);
    else if (key == "thread") r.thread = uint32_t(to_u64(rest));
    else if (key == "thread_name") r.thread_name = unescape_line(rest);
    else if (key == "frame_class") r.frame_class = unescape_line(rest);
    else if (key == "frame_method") r.frame_method = unescape_line(rest);
    else if (key == "pc") r.pc = uint32_t(to_u64(rest));
    else if (key == "line") r.line = uint32_t(to_u64(rest));
    else if (key == "preempt_switches") r.preempt_switches = to_u64(rest);
    else if (key == "checkpoints") r.checkpoints = to_u64(rest);
    else if (key == "schedule_cursor" || key == "events_cursor") {
      std::istringstream fs(rest);
      uint64_t pos = 0, rem = 0;
      if (!(fs >> pos >> rem)) bad("bad cursor line");
      if (key == "schedule_cursor") {
        r.schedule_pos = pos;
        r.schedule_remaining = rem;
      } else {
        r.events_pos = pos;
        r.events_remaining = rem;
      }
    } else if (key == "disasm") {
      size_t n = to_u64(rest);
      for (size_t i = 0; i < n; ++i) {
        if (!std::getline(is, line)) bad("truncated disasm block");
        r.disasm.push_back(unescape_line(line));
      }
    } else if (key == "recent") {
      size_t n = to_u64(rest);
      for (size_t i = 0; i < n; ++i) {
        if (!std::getline(is, line)) bad("truncated recent-events block");
        // "tag value clock" -- tag is escaped and contains no spaces.
        std::istringstream fs(line);
        NdEventRecord e;
        std::string tag;
        if (!(fs >> tag >> e.value >> e.logical_clock))
          bad("bad recent-event line");
        e.tag = unescape_line(tag);
        r.recent_events.push_back(std::move(e));
      }
    }
    // Unknown keys are skipped so the format can grow.
  }
  if (!ended) bad("missing 'endrep'");
  return r;
}

bool extract_report(const std::string& text, DivergenceReport* out) {
  const std::string header = "dvrep 1\n";
  size_t at = 0;
  while ((at = text.find(header, at)) != std::string::npos) {
    // Only accept a header at a line start.
    if (at == 0 || text[at - 1] == '\n') {
      size_t end = text.find("endrep", at);
      if (end != std::string::npos) {
        try {
          *out = parse_report(text.substr(at, end + 6 - at));
          return true;
        } catch (const VmError&) {
          // fall through and keep scanning
        }
      }
    }
    at += header.size();
  }
  return false;
}

std::string DivergenceReport::render() const {
  std::ostringstream os;
  os << "=== replay divergence report ===\n";
  os << "what:            " << what << "\n";
  os << "logical clock:   " << logical_clock << "\n";
  os << "thread:          #" << thread;
  if (!thread_name.empty()) os << " (" << thread_name << ")";
  os << "\n";
  os << "nyp remaining:   " << nyp_remaining << "\n";
  os << "preempt switches:" << " " << preempt_switches
     << "   checkpoints: " << checkpoints << "\n";
  os << "schedule cursor: pos " << schedule_pos << ", remaining "
     << schedule_remaining << " bytes\n";
  os << "events cursor:   pos " << events_pos << ", remaining "
     << events_remaining << " bytes\n";
  if (!frame_class.empty() || !frame_method.empty()) {
    os << "frame:           " << frame_class << "." << frame_method << " pc="
       << pc;
    if (line != 0) os << " line=" << line;
    os << "\n";
  } else {
    os << "frame:           <none>\n";
  }
  if (!disasm.empty()) {
    os << "disassembly (=> marks faulting pc):\n";
    for (const std::string& d : disasm) os << "  " << d << "\n";
  }
  if (!recent_events.empty()) {
    os << "last " << recent_events.size()
       << " nd-events (oldest first):\n";
    for (const NdEventRecord& e : recent_events)
      os << "  [clock " << e.logical_clock << "] " << e.tag << " = "
         << e.value << "\n";
  }
  os << "================================\n";
  return os.str();
}

}  // namespace dejavu::obs

// MetricRegistry -- named counters, gauges and fixed-bucket histograms.
//
// Telemetry in this platform must obey the paper's symmetry constraint
// (§2.4): anything the engine does on behalf of observability has to be
// invisible to the guest and identical between record and replay. The
// registry is built for that contract:
//
//  * strictly host-side -- no metric ever touches the guest heap, the
//    audit log, the logical clock or the trace streams;
//  * pre-allocated -- every metric is registered up front (the engine does
//    it at construction, before any guest code); the hot path is a single
//    integer bump through a stable pointer, never an allocation or a hash
//    lookup;
//  * snapshot-based -- readers take a plain MetricsSnapshot struct and
//    serialize it to JSON ("dejavu-metrics-v1"), so exporting telemetry is
//    decoupled from producing it.
//
// The replay engine's EngineStats is a view over this registry (the
// registry is the authoritative store; see src/replay/engine.hpp).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace dejavu::obs {

// Knobs for the optional telemetry the engine carries. All of it is
// host-side; flipping these MUST NOT change guest behaviour or trace bytes
// (tests/obs asserts exactly that).
struct ObsConfig {
  // Maintain the non-essential metrics (histograms, byte counters). The
  // core engine counters always run: EngineStats is built from them.
  bool metrics = true;
  // Capture ring-buffered timeline events (exported as Chrome trace_event
  // JSON; see src/obs/timeline.hpp).
  bool timeline = false;
  uint32_t timeline_capacity = 8192;

  // Replay-time analysis (src/obs/analysis): which built-in analyzers the
  // session installs on a replaying engine. Record mode ignores these --
  // analyzers only ever see replays, so flipping them cannot perturb a
  // recording (and the symmetry tests prove replays are byte-identical with
  // them on or off).
  bool analyze_profile = false;
  bool analyze_locks = false;
  bool analyze_heap = false;
  bool analyze_races = false;
  bool analyze_critpath = false;
  bool analyze_cachesim = false;
  uint32_t analysis_top_n = 10;  // hot-pc / hot-object list depth

  // Cache-simulator geometry (src/obs/analysis/cache_sim). The model is a
  // classic inclusive two-level set-associative LRU hierarchy fed by guest
  // heap slot traffic; these knobs select line size and per-level
  // size/associativity. Like every analysis knob they are replay-side only.
  uint32_t cache_line_bytes = 64;
  uint32_t cache_l1_bytes = 32 * 1024;
  uint32_t cache_l1_ways = 4;
  uint32_t cache_l2_bytes = 256 * 1024;
  uint32_t cache_l2_ways = 8;

  bool any_analysis() const {
    return analyze_profile || analyze_locks || analyze_heap ||
           analyze_races || analyze_critpath || analyze_cachesim;
  }
};

class Counter {
 public:
  void add(uint64_t n = 1) { v_ += n; }
  uint64_t value() const { return v_; }

 private:
  uint64_t v_ = 0;
};

class Gauge {
 public:
  void set(int64_t v) { v_ = v; }
  int64_t value() const { return v_; }

 private:
  int64_t v_ = 0;
};

// Fixed-bucket histogram: `bounds` are inclusive upper bounds in ascending
// order; one implicit overflow bucket follows. Bucket storage is allocated
// at registration, never while recording.
class Histogram {
 public:
  explicit Histogram(std::vector<uint64_t> bounds);

  void record(uint64_t v);
  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  const std::vector<uint64_t>& bounds() const { return bounds_; }
  const std::vector<uint64_t>& buckets() const { return buckets_; }

 private:
  std::vector<uint64_t> bounds_;
  std::vector<uint64_t> buckets_;  // bounds_.size() + 1 (overflow last)
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
};

enum class MetricKind : uint8_t { kCounter, kGauge, kHistogram };

const char* metric_kind_name(MetricKind k);

// One metric's value at snapshot time.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  uint64_t value = 0;  // counter value / gauge value (as two's complement)
  int64_t gauge = 0;
  uint64_t count = 0;  // histogram observations
  uint64_t sum = 0;
  std::vector<uint64_t> bounds;
  std::vector<uint64_t> buckets;
};

struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  const MetricSample* find(const std::string& name) const;
  // {"schema":"dejavu-metrics-v1","metrics":[...]}
  std::string to_json() const;
};

// Sums `from` into `into` by metric name: counters and histogram buckets
// add, gauges take the incoming value. Metrics missing from `into` are
// appended. Used by multi-run drivers (sweep, fuzz) to aggregate
// per-engine registries into one export.
void merge_snapshots(MetricsSnapshot* into, const MetricsSnapshot& from);

class MetricRegistry {
 public:
  // Registration is idempotent by name: re-registering returns the
  // existing slot (kind mismatches throw VmError). Pointers stay valid for
  // the registry's lifetime.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name, std::vector<uint64_t> bounds);

  MetricsSnapshot snapshot() const;
  size_t size() const { return order_.size(); }

 private:
  struct Entry {
    std::string name;
    MetricKind kind;
    void* slot;
  };
  Entry* find_entry(const std::string& name);

  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::vector<Entry> order_;  // registration order, for stable snapshots
};

// Exponential bucket bounds {1, 2, 4, ...} with `n` entries -- the default
// shape for yield-delta and byte-size histograms.
std::vector<uint64_t> pow2_bounds(size_t n);

}  // namespace dejavu::obs

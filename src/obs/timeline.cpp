#include "src/obs/timeline.hpp"

#include <chrono>

#include "src/common/check.hpp"
#include "src/obs/json.hpp"

namespace dejavu::obs {

namespace {

uint64_t steady_now_us() {
  return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

}  // namespace

Timeline::Timeline(size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity), epoch_us_(steady_now_us()) {}

uint64_t Timeline::now_us() const { return steady_now_us() - epoch_us_; }

void Timeline::push(const TimelineEvent& e) {
  if (size_ == ring_.size()) dropped_++;
  ring_[head_] = e;
  head_ = (head_ + 1) % ring_.size();
  if (size_ < ring_.size()) size_++;
}

void Timeline::span_begin(const char* cat, const char* name,
                          uint64_t logical_clock, uint32_t tid) {
  TimelineEvent e;
  e.type = TimelineEvent::Type::kSpanBegin;
  e.cat = cat;
  e.name = name;
  e.ts_us = now_us();
  e.logical_clock = logical_clock;
  e.tid = tid;
  push(e);
}

void Timeline::span_end(const char* cat, const char* name,
                        uint64_t logical_clock, uint32_t tid) {
  TimelineEvent e;
  e.type = TimelineEvent::Type::kSpanEnd;
  e.cat = cat;
  e.name = name;
  e.ts_us = now_us();
  e.logical_clock = logical_clock;
  e.tid = tid;
  push(e);
}

void Timeline::instant(const char* cat, const char* name,
                       uint64_t logical_clock, uint32_t tid,
                       const char* arg0_name, int64_t arg0,
                       const char* arg1_name, int64_t arg1) {
  TimelineEvent e;
  e.type = TimelineEvent::Type::kInstant;
  e.cat = cat;
  e.name = name;
  e.ts_us = now_us();
  e.logical_clock = logical_clock;
  e.tid = tid;
  e.arg0_name = arg0_name;
  e.arg0 = arg0;
  e.arg1_name = arg1_name;
  e.arg1 = arg1;
  push(e);
}

std::vector<TimelineEvent> Timeline::snapshot() const {
  std::vector<TimelineEvent> out;
  out.reserve(size_);
  size_t start = (head_ + ring_.size() - size_) % ring_.size();
  for (size_t i = 0; i < size_; ++i)
    out.push_back(ring_[(start + i) % ring_.size()]);
  return out;
}

std::string timeline_to_chrome_json(const std::vector<TimelineEvent>& events,
                                    const std::string& process_name) {
  JsonWriter w;
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();
  // Metadata event naming the process row in the viewer.
  w.begin_object();
  w.kv("ph", "M");
  w.kv("pid", uint64_t(1));
  w.kv("tid", uint64_t(0));
  w.kv("name", "process_name");
  w.key("args").begin_object();
  w.kv("name", process_name);
  w.end_object();
  w.end_object();
  for (const TimelineEvent& e : events) {
    w.begin_object();
    switch (e.type) {
      case TimelineEvent::Type::kSpanBegin: w.kv("ph", "B"); break;
      case TimelineEvent::Type::kSpanEnd: w.kv("ph", "E"); break;
      case TimelineEvent::Type::kInstant: w.kv("ph", "i"); break;
    }
    w.kv("cat", e.cat);
    w.kv("name", e.name);
    w.kv("ts", e.ts_us);
    w.kv("pid", uint64_t(1));
    w.kv("tid", uint64_t(e.tid));
    if (e.type == TimelineEvent::Type::kInstant) w.kv("s", "t");
    w.key("args").begin_object();
    w.kv("logical_clock", e.logical_clock);
    if (e.arg0_name[0] != '\0') w.kv(e.arg0_name, e.arg0);
    if (e.arg1_name[0] != '\0') w.kv(e.arg1_name, e.arg1);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace dejavu::obs

#include "src/threads/thread_package.hpp"

#include <algorithm>
#include <sstream>

namespace dejavu::threads {

const char* thread_state_name(ThreadState s) {
  switch (s) {
    case ThreadState::kUnstarted: return "unstarted";
    case ThreadState::kReady: return "ready";
    case ThreadState::kRunning: return "running";
    case ThreadState::kBlockedMonitor: return "blocked";
    case ThreadState::kWaiting: return "waiting";
    case ThreadState::kSleeping: return "sleeping";
    case ThreadState::kJoining: return "joining";
    case ThreadState::kTerminated: return "terminated";
  }
  return "?";
}

const char* switch_reason_name(SwitchReason r) {
  switch (r) {
    case SwitchReason::kPreempt: return "preempt";
    case SwitchReason::kYield: return "yield";
    case SwitchReason::kBlock: return "block";
    case SwitchReason::kWait: return "wait";
    case SwitchReason::kSleep: return "sleep";
    case SwitchReason::kJoin: return "join";
    case SwitchReason::kTerminate: return "terminate";
  }
  return "?";
}

ThreadPackage::ThreadPackage(std::function<int64_t()> clock_ms,
                             std::function<void()> idle, uint32_t lanes)
    : clock_ms_(std::move(clock_ms)), idle_(std::move(idle)), lanes_(lanes) {
  threads_.resize(1);   // slot 0 = kNoThread
  monitors_.resize(1);  // slot 0 = kNoMonitor
}

ThreadPackage::ThreadRec& ThreadPackage::rec(Tid t) {
  DV_CHECK_MSG(t != kNoThread && t < threads_.size(), "bad tid " << t);
  return threads_[t];
}

const ThreadPackage::ThreadRec& ThreadPackage::rec(Tid t) const {
  DV_CHECK_MSG(t != kNoThread && t < threads_.size(), "bad tid " << t);
  return threads_[t];
}

ThreadPackage::MonitorRec& ThreadPackage::mon(MonitorId m) {
  DV_CHECK_MSG(m != kNoMonitor && m < monitors_.size(), "bad monitor " << m);
  return monitors_[m];
}

Tid ThreadPackage::create_thread(const std::string& name) {
  Tid t = Tid(threads_.size());
  threads_.push_back(ThreadRec{});
  threads_[t].name = name;
  threads_[t].state = ThreadState::kReady;
  lanes_.assign(t);  // creation-order round-robin lane membership
  lanes_.push_ready(t);
  live_count_++;
  return t;
}

void ThreadPackage::on_thread_exit() {
  DV_CHECK(current_ != kNoThread);
  ThreadRec& r = rec(current_);
  r.state = ThreadState::kTerminated;
  for (Tid w : r.join_waiters) {
    if (rec(w).state == ThreadState::kJoining) {
      note_cross_lane(CrossLaneKind::kJoinWake, current_, w, current_);
      make_ready(w);
    }
  }
  r.join_waiters.clear();
  live_count_--;
  pending_reason_ = SwitchReason::kTerminate;
  current_ = kNoThread;
}

ThreadState ThreadPackage::state(Tid t) const { return rec(t).state; }
const std::string& ThreadPackage::name(Tid t) const { return rec(t).name; }

std::vector<Tid> ThreadPackage::all_tids() const {
  std::vector<Tid> out;
  for (Tid t = 1; t < Tid(threads_.size()); ++t) out.push_back(t);
  return out;
}

void ThreadPackage::make_ready(Tid t) {
  ThreadRec& r = rec(t);
  r.state = ThreadState::kReady;
  r.has_deadline = false;
  r.waiting_on = kNoMonitor;
  lanes_.push_ready(t);
}

void ThreadPackage::note_cross_lane(CrossLaneKind kind, Tid from, Tid to,
                                    uint64_t subject) {
  if (lanes_.lanes() == 1 || from == kNoThread || to == kNoThread) return;
  LaneId fl = lanes_.lane_of(from);
  LaneId tl = lanes_.lane_of(to);
  if (fl == tl) return;
  CrossLaneEvent e;
  e.kind = kind;
  e.seq = cross_lane_seq_++;
  e.from_lane = fl;
  e.to_lane = tl;
  e.from = from;
  e.to = to;
  e.subject = subject;
  if (cross_lane_observer_) cross_lane_observer_(e);
}

void ThreadPackage::remove_from(std::deque<Tid>& q, Tid t) {
  auto it = std::find(q.begin(), q.end(), t);
  if (it != q.end()) q.erase(it);
}

void ThreadPackage::remove_from_timed(Tid t) {
  auto it = std::find(timed_parked_.begin(), timed_parked_.end(), t);
  if (it != timed_parked_.end()) timed_parked_.erase(it);
}

int64_t ThreadPackage::read_clock() {
  clock_reads_++;
  return clock_ms_();
}

void ThreadPackage::wake_expired() {
  if (timed_parked_.empty()) return;
  int64_t now = read_clock();
  // Stable scan in arming order: deterministic wake order for equal
  // deadlines.
  for (size_t i = 0; i < timed_parked_.size();) {
    Tid t = timed_parked_[i];
    ThreadRec& r = rec(t);
    if (!r.has_deadline || now < r.wake_deadline) {
      ++i;
      continue;
    }
    timed_parked_.erase(timed_parked_.begin() + long(i));
    r.has_deadline = false;
    if (r.state == ThreadState::kSleeping) {
      make_ready(t);
    } else if (r.state == ThreadState::kWaiting) {
      // Timed wait expired: leave the wait set, queue to re-acquire.
      MonitorId m = r.waiting_on;
      remove_from(mon(m).wait_set, t);
      r.state = ThreadState::kBlockedMonitor;
      mon(m).entry_queue.push_back(t);
      hand_off_if_free(m);
    }
  }
}

Tid ThreadPackage::schedule_next() {
  for (;;) {
    wake_expired();
    if (!lanes_.empty()) {
      Tid from = current_;
      Tid next;
      if (director_ != nullptr) {
        next = director_->pick_next(lanes_.queue(kLane0));
        lanes_.remove(next);
      } else {
        next = lanes_.pop_next();
      }
      ThreadRec& r = rec(next);
      DV_CHECK_MSG(r.state == ThreadState::kReady,
                   "dispatching non-ready thread " << next);
      // Control moving between lanes is itself an ordering edge.
      note_cross_lane(CrossLaneKind::kDispatch, last_dispatched_, next, 0);
      r.state = ThreadState::kRunning;
      current_ = next;
      last_dispatched_ = next;
      switch_count_++;
      if (observer_) observer_(from, next, pending_reason_);
      return next;
    }
    if (live_count_ == 0) return kNoThread;
    if (timed_parked_.empty()) {
      std::ostringstream os;
      os << "deadlock: all " << live_count_ << " live threads blocked (";
      for (Tid t = 1; t < Tid(threads_.size()); ++t) {
        if (threads_[t].state != ThreadState::kTerminated)
          os << threads_[t].name << "=" << thread_state_name(threads_[t].state)
             << " ";
      }
      os << ")";
      throw VmError(os.str());
    }
    // All live threads are parked on time: advance via the (replayable)
    // clock. idle_ backs off the host when the clock is real.
    idle_();
  }
}

void ThreadPackage::switch_out(SwitchReason reason) {
  DV_CHECK(current_ != kNoThread);
  ThreadRec& r = rec(current_);
  DV_CHECK(r.state == ThreadState::kRunning);
  r.state = ThreadState::kReady;
  lanes_.push_ready(current_);
  pending_reason_ = reason;
  current_ = kNoThread;
}

MonitorId ThreadPackage::create_monitor() {
  monitors_.push_back(MonitorRec{});
  return MonitorId(monitors_.size() - 1);
}

void ThreadPackage::hand_off_if_free(MonitorId m) {
  MonitorRec& mr = mon(m);
  if (mr.owner == kNoThread && !mr.entry_queue.empty()) {
    Tid t = mr.entry_queue.front();
    mr.entry_queue.pop_front();
    note_cross_lane(CrossLaneKind::kMonitorHandoff, current_, t, m);
    make_ready(t);  // it retries monitorenter when dispatched
  }
}

bool ThreadPackage::monitor_enter(MonitorId m) {
  DV_CHECK(current_ != kNoThread);
  MonitorRec& mr = mon(m);
  if (mr.owner == kNoThread) {
    mr.owner = current_;
    mr.entry_count = 1;
    return true;
  }
  if (mr.owner == current_) {
    mr.entry_count++;
    return true;
  }
  mr.entry_queue.push_back(current_);
  rec(current_).state = ThreadState::kBlockedMonitor;
  pending_reason_ = SwitchReason::kBlock;
  current_ = kNoThread;
  return false;
}

void ThreadPackage::monitor_exit(MonitorId m) {
  MonitorRec& mr = mon(m);
  DV_CHECK_MSG(mr.owner == current_, "monitorexit by non-owner");
  DV_CHECK(mr.entry_count > 0);
  if (--mr.entry_count == 0) {
    mr.owner = kNoThread;
    hand_off_if_free(m);
  }
}

bool ThreadPackage::monitor_held_by_current(MonitorId m) const {
  if (m == kNoMonitor || m >= monitors_.size()) return false;
  return monitors_[m].owner == current_;
}

Tid ThreadPackage::monitor_owner(MonitorId m) const {
  if (m == kNoMonitor || m >= monitors_.size()) return kNoThread;
  return monitors_[m].owner;
}

bool ThreadPackage::wait_begin(MonitorId m, int64_t timeout_ms,
                               WaitOutcome* immediate) {
  DV_CHECK(current_ != kNoThread);
  MonitorRec& mr = mon(m);
  DV_CHECK_MSG(mr.owner == current_, "wait on monitor not owned");
  ThreadRec& r = rec(current_);
  if (r.interrupted) {
    // Java: wait() on an interrupted thread completes immediately.
    r.interrupted = false;
    immediate->interrupted = true;
    return false;
  }
  r.saved_entry_count = mr.entry_count;
  mr.owner = kNoThread;
  mr.entry_count = 0;
  mr.wait_set.push_back(current_);
  r.state = ThreadState::kWaiting;
  r.waiting_on = m;
  if (timeout_ms >= 0) {
    r.wake_deadline = read_clock() + timeout_ms;
    r.has_deadline = true;
    timed_parked_.push_back(current_);
  }
  hand_off_if_free(m);
  pending_reason_ = SwitchReason::kWait;
  current_ = kNoThread;
  return true;
}

WaitOutcome ThreadPackage::wait_finish(MonitorId m) {
  MonitorRec& mr = mon(m);
  DV_CHECK_MSG(mr.owner == current_, "wait_finish without re-acquisition");
  ThreadRec& r = rec(current_);
  mr.entry_count = r.saved_entry_count;
  r.saved_entry_count = 0;
  WaitOutcome out;
  out.interrupted = r.interrupted;
  r.interrupted = false;
  return out;
}

bool ThreadPackage::notify_one(MonitorId m) {
  MonitorRec& mr = mon(m);
  DV_CHECK_MSG(mr.owner == current_, "notify on monitor not owned");
  if (mr.wait_set.empty()) return false;
  Tid t = mr.wait_set.front();
  mr.wait_set.pop_front();
  note_cross_lane(CrossLaneKind::kNotify, current_, t, m);
  ThreadRec& r = rec(t);
  if (r.has_deadline) {
    r.has_deadline = false;
    remove_from_timed(t);
  }
  r.state = ThreadState::kBlockedMonitor;
  mr.entry_queue.push_back(t);
  // The notifier holds the monitor, so no hand-off happens until it exits.
  return true;
}

int ThreadPackage::notify_all(MonitorId m) {
  int n = 0;
  while (notify_one(m)) ++n;
  return n;
}

void ThreadPackage::interrupt(Tid t) {
  ThreadRec& r = rec(t);
  r.interrupted = true;
  if (r.state == ThreadState::kWaiting || r.state == ThreadState::kSleeping) {
    note_cross_lane(CrossLaneKind::kInterrupt, current_, t, r.waiting_on);
  }
  if (r.state == ThreadState::kWaiting) {
    MonitorId m = r.waiting_on;
    remove_from(mon(m).wait_set, t);
    if (r.has_deadline) {
      r.has_deadline = false;
      remove_from_timed(t);
    }
    r.state = ThreadState::kBlockedMonitor;
    mon(m).entry_queue.push_back(t);
    hand_off_if_free(m);
  } else if (r.state == ThreadState::kSleeping) {
    if (r.has_deadline) {
      r.has_deadline = false;
      remove_from_timed(t);
    }
    make_ready(t);
  }
}

void ThreadPackage::sleep_begin(int64_t millis) {
  DV_CHECK(current_ != kNoThread);
  ThreadRec& r = rec(current_);
  r.wake_deadline = read_clock() + (millis < 0 ? 0 : millis);
  r.has_deadline = true;
  timed_parked_.push_back(current_);
  r.state = ThreadState::kSleeping;
  pending_reason_ = SwitchReason::kSleep;
  current_ = kNoThread;
}

bool ThreadPackage::join_would_block(Tid target) const {
  return rec(target).state != ThreadState::kTerminated;
}

void ThreadPackage::join_begin(Tid target) {
  DV_CHECK(current_ != kNoThread);
  ThreadRec& tr = rec(target);
  DV_CHECK_MSG(tr.state != ThreadState::kTerminated,
               "join_begin on terminated thread");
  tr.join_waiters.push_back(current_);
  rec(current_).state = ThreadState::kJoining;
  pending_reason_ = SwitchReason::kJoin;
  current_ = kNoThread;
}

bool ThreadPackage::interrupted_flag(Tid t) const { return rec(t).interrupted; }

void ThreadPackage::serialize(ByteWriter& w) const {
  w.put_uvarint(threads_.size());
  for (const ThreadRec& r : threads_) {
    w.put_string(r.name);
    w.put_u8(uint8_t(r.state));
    w.put_u8(r.interrupted ? 1 : 0);
    w.put_svarint(r.wake_deadline);
    w.put_u8(r.has_deadline ? 1 : 0);
    w.put_uvarint(r.waiting_on);
    w.put_uvarint(r.saved_entry_count);
    w.put_uvarint(r.join_waiters.size());
    for (Tid t : r.join_waiters) w.put_uvarint(t);
  }
  w.put_uvarint(monitors_.size());
  for (const MonitorRec& m : monitors_) {
    w.put_uvarint(m.owner);
    w.put_uvarint(m.entry_count);
    w.put_uvarint(m.entry_queue.size());
    for (Tid t : m.entry_queue) w.put_uvarint(t);
    w.put_uvarint(m.wait_set.size());
    for (Tid t : m.wait_set) w.put_uvarint(t);
  }
  lanes_.serialize(w);
  w.put_uvarint(timed_parked_.size());
  for (Tid t : timed_parked_) w.put_uvarint(t);
  w.put_uvarint(current_);
  w.put_uvarint(last_dispatched_);
  w.put_u8(uint8_t(pending_reason_));
  w.put_uvarint(live_count_);
  w.put_uvarint(switch_count_);
  w.put_uvarint(clock_reads_);
  w.put_uvarint(cross_lane_seq_);
}

void ThreadPackage::restore(ByteReader& r) {
  threads_.assign(size_t(r.get_uvarint()), ThreadRec{});
  for (ThreadRec& t : threads_) {
    t.name = r.get_string();
    t.state = ThreadState(r.get_u8());
    t.interrupted = r.get_u8() != 0;
    t.wake_deadline = r.get_svarint();
    t.has_deadline = r.get_u8() != 0;
    t.waiting_on = MonitorId(r.get_uvarint());
    t.saved_entry_count = uint32_t(r.get_uvarint());
    t.join_waiters.resize(size_t(r.get_uvarint()));
    for (Tid& w : t.join_waiters) w = Tid(r.get_uvarint());
  }
  monitors_.assign(size_t(r.get_uvarint()), MonitorRec{});
  for (MonitorRec& m : monitors_) {
    m.owner = Tid(r.get_uvarint());
    m.entry_count = uint32_t(r.get_uvarint());
    size_t ne = size_t(r.get_uvarint());
    for (size_t i = 0; i < ne; ++i) m.entry_queue.push_back(Tid(r.get_uvarint()));
    size_t nw = size_t(r.get_uvarint());
    for (size_t i = 0; i < nw; ++i) m.wait_set.push_back(Tid(r.get_uvarint()));
  }
  lanes_.restore(r);
  timed_parked_.resize(size_t(r.get_uvarint()));
  for (Tid& t : timed_parked_) t = Tid(r.get_uvarint());
  current_ = Tid(r.get_uvarint());
  last_dispatched_ = Tid(r.get_uvarint());
  pending_reason_ = SwitchReason(r.get_u8());
  live_count_ = size_t(r.get_uvarint());
  switch_count_ = r.get_uvarint();
  clock_reads_ = r.get_uvarint();
  cross_lane_seq_ = r.get_uvarint();
}

}  // namespace dejavu::threads

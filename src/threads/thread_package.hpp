// The quasi-preemptive green-thread package (Jalapeño's thread system).
//
// All guest threads are multiplexed on one host thread ("uniprocessor");
// the only preemption points are yield points, and every scheduling
// decision here is a deterministic function of
//   (a) the sequence of block/unblock operations issued by the interpreter,
//   (b) the wall-clock values obtained through the injected clock function,
//   (c) the preemption decisions made at yield points by the caller.
// Under DejaVu, (b) is recorded/replayed and (c) is the nyp countdown, so
// the *entire package replays itself* -- the paper's central trick for
// getting deterministic-switch replay without a thread-ID mapping (§2.2,
// §5 vs Russinovich–Cogswell).
//
// All queues are strict FIFO; there are no hash-ordered iterations.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/common/check.hpp"
#include "src/common/io.hpp"
#include "src/threads/lane.hpp"

namespace dejavu::threads {

inline constexpr Tid kNoThread = 0;

enum class ThreadState : uint8_t {
  kUnstarted,
  kReady,
  kRunning,
  kBlockedMonitor,  // queued on a monitor's entry queue
  kWaiting,         // in a wait set (possibly with a timeout)
  kSleeping,
  kJoining,
  kTerminated,
};

const char* thread_state_name(ThreadState s);

enum class SwitchReason : uint8_t {
  kPreempt,    // timer-driven, non-deterministic (the replayed kind)
  kYield,      // explicit Thread.yield
  kBlock,      // monitorenter contention
  kWait,       // Object.wait
  kSleep,      // Thread.sleep
  kJoin,       // Thread.join
  kTerminate,  // thread exited
};

const char* switch_reason_name(SwitchReason r);

using MonitorId = uint32_t;
inline constexpr MonitorId kNoMonitor = 0;

// Outcome of a completed wait.
struct WaitOutcome {
  bool interrupted = false;
};

// Lets a replay strategy that does NOT replay the thread package
// (the Russinovich–Cogswell baseline) dictate which ready thread runs
// next. DejaVu never installs one.
class SchedulerDirector {
 public:
  virtual ~SchedulerDirector() = default;
  // Pick the next thread from `ready` (front = package's own choice).
  // Must return an element of `ready`.
  virtual Tid pick_next(const std::deque<Tid>& ready) = 0;
};

class ThreadPackage {
 public:
  // `clock_ms` supplies wall-clock reads for timed events; under DejaVu it
  // is the record/replay-aware clock, which is what makes sleep and timed
  // wait deterministic on replay (§2.2). `idle` is called when every live
  // thread is blocked on time (host backoff; no behavioural effect).
  // `lanes` partitions threads into per-lane run queues (see lane.hpp);
  // lanes=1 is the paper's single global FIFO, unchanged.
  ThreadPackage(std::function<int64_t()> clock_ms, std::function<void()> idle,
                uint32_t lanes = 1);

  // -- thread lifecycle ---------------------------------------------------
  Tid create_thread(const std::string& name);  // enters the ready queue
  void on_thread_exit();                       // current thread terminates
  Tid current() const { return current_; }
  size_t live_count() const { return live_count_; }
  ThreadState state(Tid t) const;
  const std::string& name(Tid t) const;
  size_t thread_count() const { return threads_.size() - 1; }
  std::vector<Tid> all_tids() const;

  // -- dispatch -------------------------------------------------------------
  // Selects and installs the next running thread. Returns kNoThread when no
  // live threads remain. Throws VmError on all-blocked deadlock.
  Tid schedule_next();

  // Preempt / voluntarily yield the current thread (it stays ready, goes to
  // the tail of the ready queue). Caller then returns to schedule_next().
  void switch_out(SwitchReason reason);

  // -- monitors -------------------------------------------------------------
  MonitorId create_monitor();
  // True = acquired (or recursively re-entered). False = current thread is
  // now blocked; caller must dispatch another thread and retry the
  // monitorenter when this thread runs again.
  bool monitor_enter(MonitorId m);
  void monitor_exit(MonitorId m);
  bool monitor_held_by_current(MonitorId m) const;
  // Current owner (kNoThread when free). Observation only.
  Tid monitor_owner(MonitorId m) const;

  // Begin a wait on a monitor the current thread owns. Releases the monitor
  // (saving the recursion count), parks the thread. If `timeout_ms` >= 0,
  // also arms a timed wakeup. Caller must dispatch; when this thread is
  // scheduled again it must call wait_finish() after re-acquiring.
  // Returns immediately-completed outcome if the interrupt flag was already
  // set (Java semantics: wait on an interrupted thread completes at once) --
  // in that case the monitor is NOT released and no parking happens.
  bool wait_begin(MonitorId m, int64_t timeout_ms, WaitOutcome* immediate);

  // After a woken waiter re-acquires the monitor: restores the saved
  // recursion count and reports the outcome.
  WaitOutcome wait_finish(MonitorId m);

  // True if a thread was woken ("a notify succeeds if there is a waiter").
  bool notify_one(MonitorId m);
  int notify_all(MonitorId m);

  void interrupt(Tid t);

  // -- timed events ---------------------------------------------------------
  void sleep_begin(int64_t millis);  // parks current; caller dispatches
  void join_begin(Tid target);       // parks current unless target is dead
  bool join_would_block(Tid target) const;

  // -- observation ----------------------------------------------------------
  // Invoked at every completed dispatch with (from, to, reason). `from` may
  // be kNoThread for the very first dispatch.
  using SwitchObserver =
      std::function<void(Tid from, Tid to, SwitchReason reason)>;
  void set_switch_observer(SwitchObserver obs) { observer_ = std::move(obs); }

  // Invoked at every scheduler-level interaction that crosses a lane
  // boundary (dispatch, monitor hand-off, notify, join wake, interrupt).
  // Never fires with one lane. Events carry a global monotone `seq`; the
  // sequence is a deterministic function of the execution, so a replay
  // re-emits it identically (the engine records/verifies it as the
  // order-event stream).
  using CrossLaneObserver = std::function<void(const CrossLaneEvent&)>;
  void set_cross_lane_observer(CrossLaneObserver obs) {
    cross_lane_observer_ = std::move(obs);
  }

  void set_director(SchedulerDirector* d) {
    DV_CHECK_MSG(d == nullptr || lanes_.lanes() == 1,
                 "scheduler directors require a single lane");
    director_ = d;
  }

  // -- lanes ----------------------------------------------------------------
  uint32_t lane_count() const { return lanes_.lanes(); }
  LaneId lane_of(Tid t) const { return lanes_.lane_of(t); }
  // Lane of the running thread (kLane0 when nothing runs).
  LaneId current_lane() const {
    return current_ == kNoThread ? kLane0 : lanes_.lane_of(current_);
  }
  uint64_t cross_lane_events() const { return cross_lane_seq_; }

  uint64_t switch_count() const { return switch_count_; }
  uint64_t clock_read_count() const { return clock_reads_; }

  bool interrupted_flag(Tid t) const;

  // -- checkpoint round-trip ------------------------------------------------
  // Every scheduling decision is a pure function of this state plus the
  // injected clock, so serializing it (and nothing host-side) is enough for
  // a restored package to continue the identical schedule. The lane count
  // is construction state and must match on restore.
  void serialize(ByteWriter& w) const;
  void restore(ByteReader& r);

 private:
  struct ThreadRec {
    std::string name;
    ThreadState state = ThreadState::kUnstarted;
    bool interrupted = false;
    // Timed parking.
    int64_t wake_deadline = 0;
    bool has_deadline = false;
    MonitorId waiting_on = kNoMonitor;  // set while in a wait set
    uint32_t saved_entry_count = 0;     // recursion count across a wait
    std::vector<Tid> join_waiters;
  };

  struct MonitorRec {
    Tid owner = kNoThread;
    uint32_t entry_count = 0;
    std::deque<Tid> entry_queue;
    std::deque<Tid> wait_set;
  };

  ThreadRec& rec(Tid t);
  const ThreadRec& rec(Tid t) const;
  MonitorRec& mon(MonitorId m);
  void make_ready(Tid t);
  // Emit a cross-lane order event if `from` and `to` live in different
  // lanes (no-op with one lane or when `from` is kNoThread -- a wake with
  // no thread cause is clock-driven and already deterministic per lane).
  void note_cross_lane(CrossLaneKind kind, Tid from, Tid to, uint64_t subject);
  // If the monitor is free and has queued enterers, ready the first.
  void hand_off_if_free(MonitorId m);
  void remove_from(std::deque<Tid>& q, Tid t);
  void remove_from_timed(Tid t);
  int64_t read_clock();
  // Wake every timed-parked thread whose deadline has passed. Reads the
  // clock (once) only if someone is timed-parked.
  void wake_expired();

  std::function<int64_t()> clock_ms_;
  std::function<void()> idle_;
  std::vector<ThreadRec> threads_;  // index 0 unused (kNoThread)
  std::vector<MonitorRec> monitors_;
  LaneScheduler lanes_;            // per-lane ready queues + membership
  std::vector<Tid> timed_parked_;  // threads with an armed deadline
  Tid current_ = kNoThread;
  Tid last_dispatched_ = kNoThread;  // previous running thread (lane edges)
  SwitchReason pending_reason_ = SwitchReason::kPreempt;
  size_t live_count_ = 0;
  uint64_t switch_count_ = 0;
  uint64_t clock_reads_ = 0;
  uint64_t cross_lane_seq_ = 0;
  SwitchObserver observer_;
  CrossLaneObserver cross_lane_observer_;
  SchedulerDirector* director_ = nullptr;
};

}  // namespace dejavu::threads

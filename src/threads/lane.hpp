// Lanes: the unit of log-parallelism in the thread package.
//
// The paper's platform is a uniprocessor -- one scheduler, one schedule
// log, one logical clock. A *lane* generalizes that: every green thread
// belongs to exactly one lane (assigned deterministically at creation,
// round-robin in creation order), each lane has its own FIFO run queue,
// and the dispatcher rotates over lanes deterministically. With one lane
// the scheduler degenerates to the paper's single global FIFO, bit for
// bit -- which is what lets the uniprocessor platform remain the K=1
// special case of the lane-structured one.
//
// Everything a lane does on its own is deterministic given its own log.
// The only points where lanes influence each other are scheduler-level
// wakeups that cross a lane boundary (a monitor hand-off readying a
// thread of another lane, a notify moving another lane's waiter, a dying
// thread readying a joiner, an interrupt) and dispatches that move
// control between lanes. Those are surfaced as explicit *cross-lane
// order events* carrying a global sequence number: the replay-side merge
// is keyed by this sequence, in the spirit of the distributed
// order-recording literature (record the order, not the data).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "src/common/check.hpp"
#include "src/common/io.hpp"

namespace dejavu::threads {

using Tid = uint32_t;  // mirrors thread_package.hpp (kept in sync below)

using LaneId = uint32_t;
inline constexpr LaneId kLane0 = 0;

// Why two lanes had to agree on an order.
enum class CrossLaneKind : uint8_t {
  kDispatch = 1,        // a completed dispatch moved control between lanes
  kMonitorHandoff = 2,  // monitor release readied a blocked enterer elsewhere
  kNotify = 3,          // notify moved another lane's waiter to the entry queue
  kJoinWake = 4,        // thread exit readied a joiner in another lane
  kInterrupt = 5,       // interrupt unparked a thread in another lane
  kHeapTransfer = 6,    // shared-heap object ownership moved between lanes
};

const char* cross_lane_kind_name(CrossLaneKind k);

// One cross-lane order event. `seq` is a single global monotone counter
// over all kinds; replaying the same execution re-emits the identical
// sequence, so the recorded order stream doubles as a per-event
// synchronization check (like checkpoints, but at every inter-lane edge).
struct CrossLaneEvent {
  CrossLaneKind kind{};
  uint64_t seq = 0;
  LaneId from_lane = 0;
  LaneId to_lane = 0;
  Tid from = 0;        // causing thread (kNoThread never crosses: see emit)
  Tid to = 0;          // affected thread
  uint64_t subject = 0;  // monitor id / join target / heap address; 0 if n/a
};

// Per-lane FIFO run queues plus the deterministic lane rotation that
// replaces the single global ready deque. All state transitions are a
// pure function of the call sequence -- no time, no ids from the host.
class LaneScheduler {
 public:
  explicit LaneScheduler(uint32_t lanes) : queues_(lanes == 0 ? 1 : lanes) {}

  uint32_t lanes() const { return uint32_t(queues_.size()); }

  // Deterministic membership: thread #n (creation order, 0-based) lives in
  // lane n % K. Call once per created tid, in creation order.
  LaneId assign(Tid t) {
    LaneId lane = LaneId(assigned_ % queues_.size());
    assigned_++;
    if (t >= lane_of_.size()) lane_of_.resize(size_t(t) + 1, kLane0);
    lane_of_[t] = lane;
    return lane;
  }

  LaneId lane_of(Tid t) const {
    DV_CHECK_MSG(t < lane_of_.size(), "lane_of: unassigned tid " << t);
    return lane_of_[t];
  }

  void push_ready(Tid t) { queues_[lane_of(t)].push_back(t); }

  bool empty() const {
    for (const auto& q : queues_) {
      if (!q.empty()) return false;
    }
    return true;
  }

  // Deterministic rotation: scan lanes starting at the cursor, pop the
  // first non-empty lane's front, park the cursor just past that lane.
  // With K=1 this is exactly `ready_.front(); ready_.pop_front()`.
  Tid pop_next() {
    uint32_t k = lanes();
    for (uint32_t i = 0; i < k; ++i) {
      LaneId lane = LaneId((cursor_ + i) % k);
      if (queues_[lane].empty()) continue;
      Tid t = queues_[lane].front();
      queues_[lane].pop_front();
      cursor_ = LaneId((lane + 1) % k);
      return t;
    }
    return Tid(0);  // kNoThread
  }

  void remove(Tid t) {
    auto& q = queues_[lane_of(t)];
    for (auto it = q.begin(); it != q.end(); ++it) {
      if (*it == t) {
        q.erase(it);
        return;
      }
    }
  }

  // The lane-0 queue view (the global queue when K=1; director support).
  const std::deque<Tid>& queue(LaneId lane) const { return queues_[lane]; }

  // Checkpoint round-trip (lane count is construction state and must match).
  void serialize(ByteWriter& w) const {
    w.put_uvarint(queues_.size());
    for (const auto& q : queues_) {
      w.put_uvarint(q.size());
      for (Tid t : q) w.put_uvarint(t);
    }
    w.put_uvarint(lane_of_.size());
    for (LaneId l : lane_of_) w.put_uvarint(l);
    w.put_uvarint(assigned_);
    w.put_uvarint(cursor_);
  }

  void restore(ByteReader& r) {
    size_t k = size_t(r.get_uvarint());
    DV_CHECK_MSG(k == queues_.size(), "checkpoint lane count mismatch");
    for (auto& q : queues_) {
      q.clear();
      size_t n = size_t(r.get_uvarint());
      for (size_t i = 0; i < n; ++i) q.push_back(Tid(r.get_uvarint()));
    }
    lane_of_.resize(size_t(r.get_uvarint()));
    for (LaneId& l : lane_of_) l = LaneId(r.get_uvarint());
    assigned_ = r.get_uvarint();
    cursor_ = LaneId(r.get_uvarint());
  }

 private:
  std::vector<std::deque<Tid>> queues_;
  std::vector<LaneId> lane_of_;  // indexed by tid; tid 0 unused
  uint64_t assigned_ = 0;
  LaneId cursor_ = 0;
};

}  // namespace dejavu::threads

#include "src/threads/lane.hpp"

namespace dejavu::threads {

const char* cross_lane_kind_name(CrossLaneKind k) {
  switch (k) {
    case CrossLaneKind::kDispatch: return "dispatch";
    case CrossLaneKind::kMonitorHandoff: return "handoff";
    case CrossLaneKind::kNotify: return "notify";
    case CrossLaneKind::kJoinWake: return "join-wake";
    case CrossLaneKind::kInterrupt: return "interrupt";
    case CrossLaneKind::kHeapTransfer: return "heap-transfer";
  }
  return "?";
}

}  // namespace dejavu::threads

// Timer-interrupt sources: the root of preemption non-determinism.
//
// Jalapeño preempts "at the first yield point after a periodic timer
// interrupt" (§1). The interrupt is asynchronous with respect to program
// state, which is exactly why preemptive switches are non-deterministic
// (§2.3: a fixed wall-clock interval covers a varying number of
// instructions). A TimerSource models the hardware timer: the VM asks it,
// at each yield point, whether the "preemptive hardware bit" is set.
//
//  * RealTimeTimer fires on host wall-clock quanta -- genuinely
//    non-deterministic, like the paper's platform.
//  * VirtualTimer fires after pseudo-random instruction intervals drawn
//    from a seed. Different seeds give different schedules; the same seed
//    reproduces one. Tests and experiment sweeps (E1, E4) use this to get
//    *controllable* non-determinism.
//  * ManualTimer fires at an explicit list of instruction counts, for
//    pinpoint schedule construction in unit tests.
//  * NullTimer never fires (purely cooperative scheduling).
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "src/common/rng.hpp"

namespace dejavu::threads {

class TimerSource {
 public:
  virtual ~TimerSource() = default;

  // True if the hardware bit is set at this point. `instr_count` is the
  // global count of guest instructions executed so far.
  virtual bool fired(uint64_t instr_count) = 0;

  // Called after a preemptive switch is performed: re-arm the timer.
  virtual void rearm(uint64_t instr_count) = 0;
};

class NullTimer final : public TimerSource {
 public:
  bool fired(uint64_t) override { return false; }
  void rearm(uint64_t) override {}
};

class VirtualTimer final : public TimerSource {
 public:
  VirtualTimer(uint64_t seed, uint64_t min_interval, uint64_t max_interval)
      : rng_(seed), min_(min_interval), max_(max_interval) {
    next_ = rng_.next_range(min_, max_);
  }

  bool fired(uint64_t instr_count) override { return instr_count >= next_; }

  void rearm(uint64_t instr_count) override {
    next_ = instr_count + rng_.next_range(min_, max_);
  }

 private:
  SplitMix64 rng_;
  uint64_t min_, max_;
  uint64_t next_;
};

class ManualTimer final : public TimerSource {
 public:
  // `fire_points` must be ascending instruction counts.
  explicit ManualTimer(std::vector<uint64_t> fire_points)
      : points_(std::move(fire_points)) {}

  bool fired(uint64_t instr_count) override {
    return idx_ < points_.size() && instr_count >= points_[idx_];
  }

  void rearm(uint64_t instr_count) override {
    while (idx_ < points_.size() && points_[idx_] <= instr_count) ++idx_;
  }

 private:
  std::vector<uint64_t> points_;
  size_t idx_ = 0;
};

class RealTimeTimer final : public TimerSource {
 public:
  explicit RealTimeTimer(std::chrono::microseconds quantum)
      : quantum_(quantum), next_(std::chrono::steady_clock::now() + quantum) {}

  bool fired(uint64_t) override {
    return std::chrono::steady_clock::now() >= next_;
  }

  void rearm(uint64_t) override {
    next_ = std::chrono::steady_clock::now() + quantum_;
  }

 private:
  std::chrono::microseconds quantum_;
  std::chrono::steady_clock::time_point next_;
};

}  // namespace dejavu::threads

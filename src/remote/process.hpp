// The operating-system boundary between the tool VM and the application VM.
//
// "Remote reflection relies on the underlying operating system to access
// the remote JVM address space ... which in the Jalapeño implementation is
// the Unix ptrace facility" (§3.1/§3.2). RemoteProcess is that facility's
// contract: the debugger may *read bytes at addresses* (PTRACE_PEEKDATA)
// and read per-thread register state (PTRACE_GETREGS) -- nothing else. The
// application VM executes no code on behalf of the debugger; a conforming
// implementation cannot mutate it.
//
// VmRemoteProcess adapts a (paused) in-process Vm behind this interface.
// Everything above this line -- remote objects, reflection, the debugger --
// sees only the interface, so substituting a genuinely out-of-process
// reader (e.g. /proc/<pid>/mem) changes nothing upstream.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/threads/thread_package.hpp"
#include "src/vm/vm.hpp"

namespace dejavu::remote {

// One suspended activation record, as the "registers" expose it: the guest
// address of the method's reified VM_Method object plus the pc. Everything
// human-readable (names, lines, sources) is derived by *reflection on the
// remote heap*, not by this interface.
struct RemoteFrame {
  uint32_t method_metadata_addr = 0;
  uint32_t pc = 0;
};

struct RemoteThreadState {
  threads::Tid tid = threads::kNoThread;
  uint8_t state = 0;  // threads::ThreadState value
};

class RemoteProcess {
 public:
  virtual ~RemoteProcess() = default;

  // PEEKDATA: copies n bytes at addr into dst. Returns false (without
  // partial writes) if the range is invalid in the remote address space.
  virtual bool read_bytes(uint32_t addr, void* dst, size_t n) const = 0;

  // GETREGS analogs.
  virtual std::vector<RemoteThreadState> threads() const = 0;
  virtual std::vector<RemoteFrame> thread_frames(threads::Tid t) const = 0;

  // The boot-image root: the address of the remote VM_Registry (§3.3,
  // "the address is provided ... through the process of building the
  // Jalapeño boot image").
  virtual uint32_t boot_registry_addr() const = 0;
};

// Read-only adapter over an in-process Vm. Holds `const Vm&`: the type
// system enforces the no-perturbation guarantee.
class VmRemoteProcess final : public RemoteProcess {
 public:
  explicit VmRemoteProcess(const vm::Vm& vm) : vm_(vm) {}

  bool read_bytes(uint32_t addr, void* dst, size_t n) const override;
  std::vector<RemoteThreadState> threads() const override;
  std::vector<RemoteFrame> thread_frames(threads::Tid t) const override;
  uint32_t boot_registry_addr() const override;

 private:
  const vm::Vm& vm_;
};

}  // namespace dejavu::remote

// Remote reflection (§3): reflective inspection of another VM's heap
// without executing any code in it.
//
// The key abstraction is the *remote object* (§3.1): a local proxy holding
// {type, remote address}. Remote objects originate from *mapped methods*
// (reflective entry points whose invocation is intercepted and answered
// from the remote address space) or from reference operations on other
// remote objects. "Once a remote object is obtained from a mapped method,
// all values or objects derived from it will also originate from the
// remote JVM."
//
// The tool side knows layouts two ways, mirroring §3.3's boot image:
//  * the builtin metadata classes (String, Thread, VM_Class, VM_Method,
//    VM_Registry) have fixed ids and layouts (src/vm/boot_image.hpp);
//  * application classes are discovered by *reflection itself*: the class
//    map is built by walking the remote registry's class table, reading
//    each VM_Class's name and classId, and matching the name against the
//    tool's own copy of the program (the tool VM "loads the same classes").
//
// Every accessor is a pure function of remote bytes; nothing here can
// write to the remote process.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "src/bytecode/model.hpp"
#include "src/remote/process.hpp"

namespace dejavu::remote {

// A proxy for an object in the remote VM.
struct RemoteObject {
  uint32_t addr = 0;      // remote address (0 = null)
  uint32_t class_id = 0;  // remote TypeRegistry id

  bool is_null() const { return addr == 0; }
  bool operator==(const RemoteObject&) const = default;
};

// The result of a reflective access: a primitive or a remote object.
using RemoteValue = std::variant<int64_t, RemoteObject>;

bool is_ref(const RemoteValue& v);
int64_t as_i64(const RemoteValue& v);
RemoteObject as_object(const RemoteValue& v);

// Tool-side knowledge about one remote class.
struct RemoteClassInfo {
  std::string name;
  uint32_t class_id = 0;
  RemoteObject vm_class;                     // the remote VM_Class object
  const bytecode::ClassDef* def = nullptr;   // null for VM-internal classes
  // Flattened instance layout (empty for VM-internal/synthetic classes).
  std::vector<std::pair<std::string, bytecode::ValueType>> layout;
};

class RemoteReflection {
 public:
  // `program` is the tool VM's own copy of the application's classes.
  RemoteReflection(const RemoteProcess& proc,
                   const bytecode::Program& program);

  // (Re)builds the class map by reflecting over the remote class table.
  // Call after the remote VM may have loaded new classes.
  void refresh();

  // ---- mapped methods (§3.1) -------------------------------------------
  // Invoking a mapped method returns a value backed by the remote VM. The
  // standard map contains the VM_Registry accessors; tools may add more.
  RemoteValue invoke_mapped(const std::string& name) const;
  void add_mapped_method(const std::string& name,
                         std::function<RemoteValue()> fn);
  bool has_mapped_method(const std::string& name) const;

  // ---- reference operations (the 23 extended bytecodes, §3.4) -----------
  RemoteObject object_at(uint32_t addr) const;  // reads the header
  RemoteValue get_field(const RemoteObject& obj,
                        const std::string& field) const;
  uint64_t array_length(const RemoteObject& arr) const;
  RemoteValue array_get(const RemoteObject& arr, uint64_t idx) const;
  std::string read_string(const RemoteObject& str) const;

  // ---- class metadata -----------------------------------------------------
  const RemoteClassInfo* class_info(uint32_t class_id) const;
  const RemoteClassInfo* class_info(const std::string& name) const;
  std::string class_name_of(const RemoteObject& obj) const;

  // Reflective walks over the remote VM's own tables.
  std::vector<RemoteObject> class_table() const;    // VM_Class objects
  std::vector<RemoteObject> thread_table() const;   // Thread objects
  // All VM_Method objects, in (class, method) order -- the analog of
  // VM_Dictionary.getMethods() in Figure 3.
  std::vector<RemoteObject> method_table() const;

  // Figure 3, verbatim: consult a remote method's lineTable.
  // Returns 0 when offset is out of range (as the paper's code does).
  int64_t line_number_at(const RemoteObject& vm_method,
                         uint64_t offset) const;

  // Renders a remote object as an indented tree (the debugger's
  // "tree-based class viewer"), following references to `depth`.
  std::string describe_object(const RemoteObject& obj, int depth) const;

  const RemoteProcess& process() const { return proc_; }

 private:
  uint32_t read_u32(uint32_t addr) const;
  uint64_t read_u64(uint32_t addr) const;
  RemoteValue slot_value(uint32_t slot_addr, bool ref) const;
  void install_default_mapped_methods();

  const RemoteProcess& proc_;
  const bytecode::Program& program_;
  std::map<uint32_t, RemoteClassInfo> classes_;  // by remote class id
  std::map<std::string, std::function<RemoteValue()>> mapped_;
};

}  // namespace dejavu::remote

#include "src/remote/process.hpp"

#include <cstring>

namespace dejavu::remote {

bool VmRemoteProcess::read_bytes(uint32_t addr, void* dst, size_t n) const {
  const heap::Heap& h = vm_.guest_heap();
  if (!h.valid_range(addr, n)) return false;
  std::memcpy(dst, h.raw() + addr, n);
  return true;
}

std::vector<RemoteThreadState> VmRemoteProcess::threads() const {
  std::vector<RemoteThreadState> out;
  const threads::ThreadPackage& pkg = vm_.thread_package();
  for (threads::Tid t : pkg.all_tids())
    out.push_back(RemoteThreadState{t, uint8_t(pkg.state(t))});
  return out;
}

std::vector<RemoteFrame> VmRemoteProcess::thread_frames(
    threads::Tid t) const {
  std::vector<RemoteFrame> out;
  for (const vm::FrameView& f : vm_.frames_of(t))
    out.push_back(RemoteFrame{uint32_t(f.method_metadata_addr), f.pc});
  return out;
}

uint32_t VmRemoteProcess::boot_registry_addr() const {
  return uint32_t(vm_.registry_addr());
}

}  // namespace dejavu::remote

#include "src/remote/reflection.hpp"

#include <sstream>

#include "src/heap/heap.hpp"
#include "src/vm/boot_image.hpp"

namespace dejavu::remote {

namespace vmc = dejavu::vm;
using bytecode::ValueType;

bool is_ref(const RemoteValue& v) {
  return std::holds_alternative<RemoteObject>(v);
}

int64_t as_i64(const RemoteValue& v) {
  const int64_t* p = std::get_if<int64_t>(&v);
  if (p == nullptr) throw RemoteError("expected a primitive, got a reference");
  return *p;
}

RemoteObject as_object(const RemoteValue& v) {
  const RemoteObject* p = std::get_if<RemoteObject>(&v);
  if (p == nullptr) throw RemoteError("expected a reference, got a primitive");
  return *p;
}

RemoteReflection::RemoteReflection(const RemoteProcess& proc,
                                   const bytecode::Program& program)
    : proc_(proc), program_(program) {
  install_default_mapped_methods();
  refresh();
}

uint32_t RemoteReflection::read_u32(uint32_t addr) const {
  uint32_t v = 0;
  if (!proc_.read_bytes(addr, &v, 4))
    throw RemoteError("invalid remote read of 4 bytes at " +
                      std::to_string(addr));
  return v;
}

uint64_t RemoteReflection::read_u64(uint32_t addr) const {
  uint64_t v = 0;
  if (!proc_.read_bytes(addr, &v, 8))
    throw RemoteError("invalid remote read of 8 bytes at " +
                      std::to_string(addr));
  return v;
}

RemoteObject RemoteReflection::object_at(uint32_t addr) const {
  if (addr == 0) return RemoteObject{};
  return RemoteObject{addr, read_u32(addr + heap::kOffClassId)};
}

RemoteValue RemoteReflection::slot_value(uint32_t slot_addr, bool ref) const {
  uint64_t raw = read_u64(slot_addr);
  if (ref) return object_at(uint32_t(raw));
  return int64_t(raw);
}

void RemoteReflection::install_default_mapped_methods() {
  // The standard mapped entry points: accessors of the boot registry.
  // Invoking them never runs remote code; the interception answers from
  // the remote address space (§3.4 "the actual invocation is not made").
  auto reg_field = [this](uint32_t slot, bool ref) {
    uint32_t reg = proc_.boot_registry_addr();
    return slot_value(reg + heap::kOffFields + slot * 8, ref);
  };
  mapped_["VM_Registry.getClassTable"] = [reg_field] {
    return reg_field(vmc::kRegClassTable, true);
  };
  mapped_["VM_Registry.getClassCount"] = [reg_field] {
    return reg_field(vmc::kRegClassCount, false);
  };
  mapped_["VM_Registry.getThreadTable"] = [reg_field] {
    return reg_field(vmc::kRegThreadTable, true);
  };
  mapped_["VM_Registry.getThreadCount"] = [reg_field] {
    return reg_field(vmc::kRegThreadCount, false);
  };
  mapped_["VM_Registry.getInternTable"] = [reg_field] {
    return reg_field(vmc::kRegInternTable, true);
  };
}

RemoteValue RemoteReflection::invoke_mapped(const std::string& name) const {
  auto it = mapped_.find(name);
  if (it == mapped_.end())
    throw RemoteError("method " + name + " is not in the mapping list");
  return it->second();
}

void RemoteReflection::add_mapped_method(const std::string& name,
                                         std::function<RemoteValue()> fn) {
  mapped_[name] = std::move(fn);
}

bool RemoteReflection::has_mapped_method(const std::string& name) const {
  return mapped_.find(name) != mapped_.end();
}

void RemoteReflection::refresh() {
  classes_.clear();

  // Builtin metadata classes: fixed boot-image layout.
  auto builtin = [&](uint32_t id, const char* name,
                     std::vector<std::pair<std::string, ValueType>> layout) {
    RemoteClassInfo info;
    info.name = name;
    info.class_id = id;
    info.layout = std::move(layout);
    classes_[id] = std::move(info);
  };
  builtin(vmc::kTypeString, "String", {{"chars", ValueType::kRef}});
  builtin(vmc::kTypeThread, "Thread",
          {{"name", ValueType::kRef},
           {"tid", ValueType::kI64},
           {"stack", ValueType::kRef}});
  builtin(vmc::kTypeVmClass, "VM_Class",
          {{"name", ValueType::kRef},
           {"super", ValueType::kRef},
           {"methods", ValueType::kRef},
           {"statics", ValueType::kRef},
           {"classId", ValueType::kI64}});
  builtin(vmc::kTypeVmMethod, "VM_Method",
          {{"name", ValueType::kRef},
           {"owner", ValueType::kRef},
           {"lineTable", ValueType::kRef},
           {"codeLength", ValueType::kI64}});
  builtin(vmc::kTypeVmRegistry, "VM_Registry",
          {{"classTable", ValueType::kRef},
           {"classCount", ValueType::kI64},
           {"internTable", ValueType::kRef},
           {"threadTable", ValueType::kRef},
           {"threadCount", ValueType::kI64}});

  // Application classes: discovered by reflecting over the remote class
  // table and matched by name against the tool's own program copy.
  for (const RemoteObject& vm_class : class_table()) {
    std::string name = read_string(as_object(get_field(vm_class, "name")));
    int64_t class_id = as_i64(get_field(vm_class, "classId"));
    RemoteClassInfo info;
    info.name = name;
    info.class_id = uint32_t(class_id);
    info.vm_class = vm_class;
    info.def = program_.find_class(name);
    if (info.def != nullptr) {
      // Flattened layout, superclass fields first (same rule as the VM).
      std::vector<const bytecode::ClassDef*> chain;
      for (const bytecode::ClassDef* c = info.def; c != nullptr;
           c = c->super.empty() ? nullptr : program_.find_class(c->super)) {
        chain.push_back(c);
      }
      for (size_t i = chain.size(); i-- > 0;) {
        for (const auto& f : chain[i]->fields)
          info.layout.emplace_back(f.name, f.type);
      }
    }
    classes_[info.class_id] = std::move(info);
  }
}

const RemoteClassInfo* RemoteReflection::class_info(uint32_t class_id) const {
  auto it = classes_.find(class_id);
  return it == classes_.end() ? nullptr : &it->second;
}

const RemoteClassInfo* RemoteReflection::class_info(
    const std::string& name) const {
  for (const auto& [id, info] : classes_) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

std::string RemoteReflection::class_name_of(const RemoteObject& obj) const {
  if (obj.is_null()) return "null";
  switch (obj.class_id) {
    case heap::kClassIdI64Array: return "i64[]";
    case heap::kClassIdRefArray: return "ref[]";
    case heap::kClassIdByteArray: return "byte[]";
    default: break;
  }
  const RemoteClassInfo* info = class_info(obj.class_id);
  return info != nullptr ? info->name
                         : "<class#" + std::to_string(obj.class_id) + ">";
}

RemoteValue RemoteReflection::get_field(const RemoteObject& obj,
                                        const std::string& field) const {
  if (obj.is_null()) throw RemoteError("get_field on null remote object");
  const RemoteClassInfo* info = class_info(obj.class_id);
  if (info == nullptr)
    throw RemoteError("remote object of unknown class id " +
                      std::to_string(obj.class_id));
  for (size_t slot = 0; slot < info->layout.size(); ++slot) {
    if (info->layout[slot].first == field) {
      return slot_value(obj.addr + heap::kOffFields + uint32_t(slot) * 8,
                        info->layout[slot].second == ValueType::kRef);
    }
  }
  throw RemoteError("class " + info->name + " has no field " + field);
}

uint64_t RemoteReflection::array_length(const RemoteObject& arr) const {
  if (arr.is_null()) throw RemoteError("array_length on null");
  if (arr.class_id != heap::kClassIdI64Array &&
      arr.class_id != heap::kClassIdRefArray &&
      arr.class_id != heap::kClassIdByteArray)
    throw RemoteError("array_length on non-array " + class_name_of(arr));
  return read_u64(arr.addr + heap::kOffArrayLen);
}

RemoteValue RemoteReflection::array_get(const RemoteObject& arr,
                                        uint64_t idx) const {
  uint64_t len = array_length(arr);
  if (idx >= len)
    throw RemoteError("remote array index " + std::to_string(idx) +
                      " out of bounds (len " + std::to_string(len) + ")");
  switch (arr.class_id) {
    case heap::kClassIdByteArray: {
      uint8_t b = 0;
      if (!proc_.read_bytes(arr.addr + heap::kOffArrayData + uint32_t(idx),
                            &b, 1))
        throw RemoteError("invalid remote byte read");
      return int64_t(b);
    }
    case heap::kClassIdRefArray:
      return slot_value(arr.addr + heap::kOffArrayData + uint32_t(idx) * 8,
                        true);
    default:
      return slot_value(arr.addr + heap::kOffArrayData + uint32_t(idx) * 8,
                        false);
  }
}

std::string RemoteReflection::read_string(const RemoteObject& str) const {
  if (str.is_null()) return "<null>";
  if (str.class_id != vmc::kTypeString)
    throw RemoteError("read_string on non-String " + class_name_of(str));
  RemoteObject chars = as_object(get_field(str, "chars"));
  uint64_t n = array_length(chars);
  std::string out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i)
    out.push_back(char(as_i64(array_get(chars, i))));
  return out;
}

std::vector<RemoteObject> RemoteReflection::class_table() const {
  RemoteObject table = as_object(invoke_mapped("VM_Registry.getClassTable"));
  int64_t count = as_i64(invoke_mapped("VM_Registry.getClassCount"));
  std::vector<RemoteObject> out;
  for (int64_t i = 0; i < count; ++i)
    out.push_back(as_object(array_get(table, uint64_t(i))));
  return out;
}

std::vector<RemoteObject> RemoteReflection::thread_table() const {
  RemoteObject table = as_object(invoke_mapped("VM_Registry.getThreadTable"));
  int64_t count = as_i64(invoke_mapped("VM_Registry.getThreadCount"));
  std::vector<RemoteObject> out;
  for (int64_t i = 0; i < count; ++i)
    out.push_back(as_object(array_get(table, uint64_t(i))));
  return out;
}

std::vector<RemoteObject> RemoteReflection::method_table() const {
  std::vector<RemoteObject> out;
  for (const RemoteObject& cls : class_table()) {
    RemoteObject methods = as_object(get_field(cls, "methods"));
    if (methods.is_null()) continue;
    uint64_t n = array_length(methods);
    for (uint64_t i = 0; i < n; ++i)
      out.push_back(as_object(array_get(methods, i)));
  }
  return out;
}

int64_t RemoteReflection::line_number_at(const RemoteObject& vm_method,
                                         uint64_t offset) const {
  // Figure 3: "if (offset > linetable.length) return 0;
  //            return linetable[offset];"
  RemoteObject line_table = as_object(get_field(vm_method, "lineTable"));
  if (offset >= array_length(line_table)) return 0;
  return as_i64(array_get(line_table, offset));
}

std::string RemoteReflection::describe_object(const RemoteObject& obj,
                                              int depth) const {
  std::ostringstream os;
  std::function<void(const RemoteObject&, int, int)> rec =
      [&](const RemoteObject& o, int d, int indent) {
        std::string pad(size_t(indent) * 2, ' ');
        if (o.is_null()) {
          os << pad << "null\n";
          return;
        }
        os << pad << class_name_of(o) << " @" << o.addr;
        if (o.class_id == vmc::kTypeString) {
          os << " \"" << read_string(o) << "\"\n";
          return;
        }
        os << "\n";
        if (d <= 0) return;
        if (o.class_id == heap::kClassIdI64Array ||
            o.class_id == heap::kClassIdByteArray) {
          uint64_t n = array_length(o);
          os << pad << "  [";
          for (uint64_t i = 0; i < n && i < 16; ++i) {
            if (i) os << ", ";
            os << as_i64(array_get(o, i));
          }
          if (n > 16) os << ", ...";
          os << "] (len " << n << ")\n";
          return;
        }
        if (o.class_id == heap::kClassIdRefArray) {
          uint64_t n = array_length(o);
          for (uint64_t i = 0; i < n && i < 16; ++i) {
            os << pad << "  [" << i << "]:\n";
            rec(as_object(array_get(o, i)), d - 1, indent + 2);
          }
          return;
        }
        const RemoteClassInfo* info = class_info(o.class_id);
        if (info == nullptr) return;
        for (const auto& [fname, ftype] : info->layout) {
          RemoteValue v = get_field(o, fname);
          if (is_ref(v)) {
            os << pad << "  ." << fname << ":\n";
            rec(as_object(v), d - 1, indent + 2);
          } else {
            os << pad << "  ." << fname << " = " << as_i64(v) << "\n";
          }
        }
      };
  rec(obj, depth, 0);
  return os.str();
}

}  // namespace dejavu::remote

// The guest heap: a single contiguous address space with type-accurate GC.
//
// Everything the guest program can reach lives in one byte vector indexed by
// 32-bit addresses ("the application JVM's address space"). This matters for
// two of the paper's pillars:
//
//  * Type-accurate garbage collection (§1): Jalapeño identifies every live
//    reference, including those in thread stacks, via reference maps at
//    safe points. Both collectors here (semispace copying and mark-sweep)
//    get exact roots from a RootProvider and exact in-object reference
//    layouts from the TypeRegistry. GC is therefore fully deterministic --
//    a prerequisite for the replay argument ("automatic memory management
//    ... is completely deterministic in Jalapeño").
//
//  * Remote reflection (§3): the debugger inspects this address space purely
//    through byte reads at addresses (the ptrace contract). Object layout
//    here *is* the wire format the tool-side reflection engine decodes.
//
// Object layout (all offsets in bytes, all slots 8-byte aligned):
//   [0]  u32 class_id     (TypeRegistry id; small ids reserved for arrays)
//   [4]  u32 size_bytes   (total object size incl. header)
//   [8]  u32 lockword     (inflated monitor id, 0 = unlocked ever)
//   [12] u32 gc_bits      (mark bit)
//   [16] ... payload: field slots, or u64 length + array elements
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/check.hpp"
#include "src/common/hash.hpp"
#include "src/common/io.hpp"

namespace dejavu::heap {

using Addr = uint32_t;
inline constexpr Addr kNull = 0;

// Reserved class ids. Real classes get ids >= kFirstClassId from the
// TypeRegistry.
inline constexpr uint32_t kClassIdI64Array = 1;
inline constexpr uint32_t kClassIdRefArray = 2;
inline constexpr uint32_t kClassIdByteArray = 3;
inline constexpr uint32_t kClassIdForwarded = 0x00fffffe;  // copying-GC relic
inline constexpr uint32_t kFirstClassId = 8;

inline constexpr uint32_t kHeaderBytes = 16;
inline constexpr uint32_t kOffClassId = 0;
inline constexpr uint32_t kOffSize = 4;
inline constexpr uint32_t kOffLockword = 8;
inline constexpr uint32_t kOffGcBits = 12;
inline constexpr uint32_t kOffArrayLen = 16;  // u64 length slot (arrays only)
inline constexpr uint32_t kOffArrayData = 24;
inline constexpr uint32_t kOffFields = 16;

// Per-class layout information the GC needs to scan instances.
struct TypeInfo {
  std::string name;
  uint32_t num_slots = 0;          // 8-byte field slots
  std::vector<bool> ref_slot;      // which slots hold references
};

// Registry of runtime types. The VM's class loader registers one entry per
// loaded class (and one per per-class statics record). Shared read-only
// with the tool-side reflection engine -- this is the "boot image" layout
// knowledge of §3.2.
class TypeRegistry {
 public:
  uint32_t register_type(TypeInfo info);
  const TypeInfo& info(uint32_t class_id) const;
  bool is_array(uint32_t class_id) const {
    return class_id == kClassIdI64Array || class_id == kClassIdRefArray ||
           class_id == kClassIdByteArray;
  }
  size_t size() const { return types_.size(); }

  // Checkpoint round-trip: ids are positions, so restoring the whole table
  // preserves every previously handed-out class id.
  void serialize(ByteWriter& w) const;
  void restore(ByteReader& r);

 private:
  std::vector<TypeInfo> types_;
};

// Supplies GC roots. The callback receives the *location* of each root slot
// (so the copying collector can rewrite it). Slots hold Addr widened to
// uint64_t; kNull roots are permitted and ignored.
class RootProvider {
 public:
  virtual ~RootProvider() = default;
  virtual void enumerate_roots(
      const std::function<void(uint64_t* slot)>& visit) = 0;
};

enum class GcKind { kSemispaceCopying, kMarkSweep };

struct HeapConfig {
  size_t size_bytes = 32u << 20;  // per-semispace for copying
  GcKind gc = GcKind::kSemispaceCopying;
};

struct HeapStats {
  uint64_t alloc_count = 0;      // objects allocated since startup
  uint64_t alloc_bytes = 0;
  uint64_t gc_count = 0;
  uint64_t gc_live_bytes_last = 0;
};

// Observer invoked on GC events; the replay engine's audit log subscribes
// to assert that GCs happen at identical points in record and replay (P6).
using GcObserver = std::function<void(uint64_t gc_index, uint64_t live_bytes)>;

// Observer invoked once per object the copying collector relocates
// (`from` is the old address, `to` the new one). Replay-time analyzers use
// it to keep per-object identity exact across collections; GC itself is
// deterministic, so subscribing never perturbs the run.
using MoveObserver = std::function<void(Addr from, Addr to)>;

class Heap {
 public:
  Heap(const TypeRegistry& types, HeapConfig cfg);

  // -- allocation (all zero-initialized; may trigger GC) ----------------
  Addr alloc_object(uint32_t class_id);
  Addr alloc_array_i64(uint64_t length);
  Addr alloc_array_ref(uint64_t length);
  Addr alloc_array_bytes(uint64_t length);

  // -- typed access ------------------------------------------------------
  uint32_t class_of(Addr obj) const { return read_u32(obj + kOffClassId); }
  uint32_t size_of(Addr obj) const { return read_u32(obj + kOffSize); }
  uint32_t lockword(Addr obj) const { return read_u32(obj + kOffLockword); }
  void set_lockword(Addr obj, uint32_t v) { write_u32(obj + kOffLockword, v); }

  int64_t field_i64(Addr obj, uint32_t slot) const;
  void set_field_i64(Addr obj, uint32_t slot, int64_t v);
  Addr field_ref(Addr obj, uint32_t slot) const;
  void set_field_ref(Addr obj, uint32_t slot, Addr v);

  uint64_t array_length(Addr arr) const;
  int64_t array_i64(Addr arr, uint64_t idx) const;
  void set_array_i64(Addr arr, uint64_t idx, int64_t v);
  Addr array_ref(Addr arr, uint64_t idx) const;
  void set_array_ref(Addr arr, uint64_t idx, Addr v);
  uint8_t array_byte(Addr arr, uint64_t idx) const;
  void set_array_byte(Addr arr, uint64_t idx, uint8_t v);

  // -- GC ----------------------------------------------------------------
  void set_root_provider(RootProvider* rp) { roots_ = rp; }
  void set_gc_observer(GcObserver obs) { gc_observer_ = std::move(obs); }
  void set_move_observer(MoveObserver obs) { move_observer_ = std::move(obs); }
  void collect();

  // -- introspection -----------------------------------------------------
  const HeapStats& stats() const { return stats_; }
  size_t used_bytes() const;
  size_t capacity_bytes() const { return space_bytes_; }

  // Raw byte view of the *live* space, for the remote-memory facility and
  // for behaviour hashing. Addresses handed out by alloc_* index into this.
  const uint8_t* raw() const { return mem_.data(); }
  size_t raw_size() const { return mem_.size(); }

  // Hash of the allocated portion of the live space. Two behaviourally
  // identical runs produce identical heap images (property P1).
  uint64_t image_hash() const;

  // Bounds-check an externally supplied address range (remote reflection).
  bool valid_range(Addr addr, size_t n) const;

  const TypeRegistry& types() const { return types_; }
  const HeapConfig& config() const { return cfg_; }

  // Checkpoint round-trip. serialize captures the live space (plus the
  // allocator and GC bookkeeping); restore reproduces it into a heap built
  // with the *same* HeapConfig -- absolute addresses stay valid, so every
  // Addr held elsewhere (thread stacks, registry, engine buffers) survives.
  void serialize(ByteWriter& w) const;
  void restore(ByteReader& r);

 private:
  uint32_t read_u32(size_t off) const;
  void write_u32(size_t off, uint32_t v);
  uint64_t read_u64(size_t off) const;
  void write_u64(size_t off, uint64_t v);

  Addr raw_alloc(size_t bytes_needed, uint32_t class_id);
  void collect_copying();
  void collect_mark_sweep();
  Addr copy_or_forward(Addr obj, size_t& scan_free);
  void scan_object_refs(Addr obj, const std::function<void(size_t slot_off)>& f);

  const TypeRegistry& types_;
  HeapConfig cfg_;
  std::vector<uint8_t> mem_;
  size_t space_bytes_;   // one semispace (copying) or the whole heap (m-s)
  size_t from_base_;     // base offset of the live space
  size_t bump_;          // next free offset (bump allocation)
  RootProvider* roots_ = nullptr;
  GcObserver gc_observer_;
  MoveObserver move_observer_;
  HeapStats stats_;

  // Mark-sweep free list: (offset, size) sorted by offset.
  struct FreeBlock {
    size_t off;
    size_t size;
  };
  std::vector<FreeBlock> free_list_;
};

}  // namespace dejavu::heap

#include "src/heap/heap.hpp"

#include <algorithm>
#include <cstring>

namespace dejavu::heap {

namespace {
inline constexpr uint32_t kClassIdFreeBlock = 4;
inline constexpr uint32_t kGcMarkBit = 1;

size_t align8(size_t n) { return (n + 7) & ~size_t(7); }
}  // namespace

// ----------------------------------------------------------- TypeRegistry

uint32_t TypeRegistry::register_type(TypeInfo info) {
  DV_CHECK_MSG(info.ref_slot.size() == info.num_slots,
               "TypeInfo ref bitmap size mismatch for " << info.name);
  types_.push_back(std::move(info));
  return kFirstClassId + uint32_t(types_.size() - 1);
}

const TypeInfo& TypeRegistry::info(uint32_t class_id) const {
  DV_CHECK_MSG(class_id >= kFirstClassId &&
                   class_id - kFirstClassId < types_.size(),
               "unknown class id " << class_id);
  return types_[class_id - kFirstClassId];
}

void TypeRegistry::serialize(ByteWriter& w) const {
  w.put_uvarint(types_.size());
  for (const TypeInfo& t : types_) {
    w.put_string(t.name);
    w.put_uvarint(t.num_slots);
    for (uint32_t s = 0; s < t.num_slots; ++s)
      w.put_u8(t.ref_slot[s] ? 1 : 0);
  }
}

void TypeRegistry::restore(ByteReader& r) {
  types_.clear();
  size_t n = size_t(r.get_uvarint());
  types_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    TypeInfo t;
    t.name = r.get_string();
    t.num_slots = uint32_t(r.get_uvarint());
    t.ref_slot.resize(t.num_slots);
    for (uint32_t s = 0; s < t.num_slots; ++s) t.ref_slot[s] = r.get_u8() != 0;
    types_.push_back(std::move(t));
  }
}

// ------------------------------------------------------------------- Heap

Heap::Heap(const TypeRegistry& types, HeapConfig cfg)
    : types_(types), cfg_(cfg) {
  space_bytes_ = align8(cfg.size_bytes);
  DV_CHECK_MSG(space_bytes_ >= 4096, "heap too small");
  size_t total = cfg.gc == GcKind::kSemispaceCopying ? 2 * space_bytes_
                                                     : space_bytes_;
  mem_.assign(total, 0);
  from_base_ = 0;
  bump_ = 8;  // address 0 is reserved for null
}

uint32_t Heap::read_u32(size_t off) const {
  DV_CHECK(off + 4 <= mem_.size());
  uint32_t v;
  std::memcpy(&v, mem_.data() + off, 4);
  return v;
}

void Heap::write_u32(size_t off, uint32_t v) {
  DV_CHECK(off + 4 <= mem_.size());
  std::memcpy(mem_.data() + off, &v, 4);
}

uint64_t Heap::read_u64(size_t off) const {
  DV_CHECK(off + 8 <= mem_.size());
  uint64_t v;
  std::memcpy(&v, mem_.data() + off, 8);
  return v;
}

void Heap::write_u64(size_t off, uint64_t v) {
  DV_CHECK(off + 8 <= mem_.size());
  std::memcpy(mem_.data() + off, &v, 8);
}

Addr Heap::raw_alloc(size_t bytes_needed, uint32_t class_id) {
  size_t need = align8(bytes_needed);

  for (int attempt = 0; attempt < 2; ++attempt) {
    // Mark-sweep: try the free list first (first fit, deterministic).
    if (cfg_.gc == GcKind::kMarkSweep) {
      for (size_t i = 0; i < free_list_.size(); ++i) {
        FreeBlock& fb = free_list_[i];
        if (fb.size < need) continue;
        size_t off = fb.off;
        size_t remainder = fb.size - need;
        size_t take = need;
        if (remainder >= kHeaderBytes + 8) {
          fb.off += need;
          fb.size = remainder;
          write_u32(fb.off + kOffClassId, kClassIdFreeBlock);
          write_u32(fb.off + kOffSize, uint32_t(remainder));
        } else {
          take = fb.size;  // absorb the unsplittable tail
          free_list_.erase(free_list_.begin() + long(i));
        }
        std::memset(mem_.data() + off, 0, take);
        write_u32(off + kOffClassId, class_id);
        write_u32(off + kOffSize, uint32_t(take));
        return Addr(off);
      }
    }

    size_t limit = from_base_ + space_bytes_;
    if (bump_ + need <= limit) {
      size_t off = bump_;
      bump_ += need;
      std::memset(mem_.data() + off, 0, need);
      write_u32(off + kOffClassId, class_id);
      write_u32(off + kOffSize, uint32_t(need));
      return Addr(off);
    }

    if (attempt == 0) collect();
  }
  throw VmError("guest heap out of memory (need " +
                std::to_string(need) + " bytes)");
}

Addr Heap::alloc_object(uint32_t class_id) {
  const TypeInfo& ti = types_.info(class_id);
  Addr a = raw_alloc(kHeaderBytes + size_t(ti.num_slots) * 8, class_id);
  stats_.alloc_count++;
  stats_.alloc_bytes += size_of(a);
  return a;
}

Addr Heap::alloc_array_i64(uint64_t length) {
  Addr a = raw_alloc(kOffArrayData + length * 8, kClassIdI64Array);
  write_u64(a + kOffArrayLen, length);
  stats_.alloc_count++;
  stats_.alloc_bytes += size_of(a);
  return a;
}

Addr Heap::alloc_array_ref(uint64_t length) {
  Addr a = raw_alloc(kOffArrayData + length * 8, kClassIdRefArray);
  write_u64(a + kOffArrayLen, length);
  stats_.alloc_count++;
  stats_.alloc_bytes += size_of(a);
  return a;
}

Addr Heap::alloc_array_bytes(uint64_t length) {
  Addr a = raw_alloc(kOffArrayData + length, kClassIdByteArray);
  write_u64(a + kOffArrayLen, length);
  stats_.alloc_count++;
  stats_.alloc_bytes += size_of(a);
  return a;
}

int64_t Heap::field_i64(Addr obj, uint32_t slot) const {
  DV_CHECK_MSG(obj != kNull, "null dereference (getfield)");
  return int64_t(read_u64(obj + kOffFields + size_t(slot) * 8));
}

void Heap::set_field_i64(Addr obj, uint32_t slot, int64_t v) {
  DV_CHECK_MSG(obj != kNull, "null dereference (putfield)");
  write_u64(obj + kOffFields + size_t(slot) * 8, uint64_t(v));
}

Addr Heap::field_ref(Addr obj, uint32_t slot) const {
  return Addr(uint64_t(field_i64(obj, slot)));
}

void Heap::set_field_ref(Addr obj, uint32_t slot, Addr v) {
  set_field_i64(obj, slot, int64_t(uint64_t(v)));
}

uint64_t Heap::array_length(Addr arr) const {
  DV_CHECK_MSG(arr != kNull, "null dereference (arraylength)");
  return read_u64(arr + kOffArrayLen);
}

int64_t Heap::array_i64(Addr arr, uint64_t idx) const {
  DV_CHECK_MSG(arr != kNull, "null dereference (aload)");
  DV_CHECK_MSG(idx < array_length(arr), "array index out of bounds");
  return int64_t(read_u64(arr + kOffArrayData + idx * 8));
}

void Heap::set_array_i64(Addr arr, uint64_t idx, int64_t v) {
  DV_CHECK_MSG(arr != kNull, "null dereference (astore)");
  DV_CHECK_MSG(idx < array_length(arr), "array index out of bounds");
  write_u64(arr + kOffArrayData + idx * 8, uint64_t(v));
}

Addr Heap::array_ref(Addr arr, uint64_t idx) const {
  return Addr(uint64_t(array_i64(arr, idx)));
}

void Heap::set_array_ref(Addr arr, uint64_t idx, Addr v) {
  set_array_i64(arr, idx, int64_t(uint64_t(v)));
}

uint8_t Heap::array_byte(Addr arr, uint64_t idx) const {
  DV_CHECK_MSG(arr != kNull, "null dereference (byte aload)");
  DV_CHECK_MSG(idx < array_length(arr), "byte index out of bounds");
  return mem_[arr + kOffArrayData + idx];
}

void Heap::set_array_byte(Addr arr, uint64_t idx, uint8_t v) {
  DV_CHECK_MSG(arr != kNull, "null dereference (byte astore)");
  DV_CHECK_MSG(idx < array_length(arr), "byte index out of bounds");
  mem_[arr + kOffArrayData + idx] = v;
}

void Heap::scan_object_refs(Addr obj,
                            const std::function<void(size_t)>& f) {
  uint32_t cid = class_of(obj);
  switch (cid) {
    case kClassIdI64Array:
    case kClassIdByteArray:
    case kClassIdFreeBlock:
      return;
    case kClassIdRefArray: {
      uint64_t len = array_length(obj);
      for (uint64_t i = 0; i < len; ++i)
        f(obj + kOffArrayData + size_t(i) * 8);
      return;
    }
    default: {
      const TypeInfo& ti = types_.info(cid);
      for (uint32_t s = 0; s < ti.num_slots; ++s) {
        if (ti.ref_slot[s]) f(obj + kOffFields + size_t(s) * 8);
      }
      return;
    }
  }
}

void Heap::collect() {
  DV_CHECK_MSG(roots_ != nullptr, "GC requested with no root provider");
  if (cfg_.gc == GcKind::kSemispaceCopying) {
    collect_copying();
  } else {
    collect_mark_sweep();
  }
  stats_.gc_count++;
  stats_.gc_live_bytes_last = used_bytes();
  if (gc_observer_) gc_observer_(stats_.gc_count, stats_.gc_live_bytes_last);
}

Addr Heap::copy_or_forward(Addr obj, size_t& to_bump) {
  if (obj == kNull) return kNull;
  DV_CHECK_MSG(obj >= from_base_ + 8 && obj < from_base_ + space_bytes_,
               "GC saw reference outside from-space: " << obj);
  if (class_of(obj) == kClassIdForwarded) return Addr(read_u32(obj + kOffSize));
  uint32_t size = size_of(obj);
  size_t dst = to_bump;
  to_bump += size;
  DV_CHECK_MSG(to_bump <= (from_base_ == 0 ? 2 * space_bytes_ : space_bytes_),
               "to-space overflow during copying GC");
  std::memcpy(mem_.data() + dst, mem_.data() + obj, size);
  write_u32(obj + kOffClassId, kClassIdForwarded);
  write_u32(obj + kOffSize, uint32_t(dst));
  if (move_observer_) move_observer_(obj, Addr(dst));
  return Addr(dst);
}

void Heap::collect_copying() {
  size_t to_base = from_base_ == 0 ? space_bytes_ : 0;
  size_t to_bump = to_base + 8;

  roots_->enumerate_roots([&](uint64_t* slot) {
    *slot = copy_or_forward(Addr(*slot), to_bump);
  });

  // Cheney scan.
  size_t scan = to_base + 8;
  while (scan < to_bump) {
    Addr obj = Addr(scan);
    scan_object_refs(obj, [&](size_t slot_off) {
      uint64_t v = read_u64(slot_off);
      write_u64(slot_off, copy_or_forward(Addr(v), to_bump));
    });
    scan += size_of(obj);
  }

  from_base_ = to_base;
  bump_ = to_bump;
}

void Heap::collect_mark_sweep() {
  // Mark.
  std::vector<Addr> worklist;
  auto mark = [&](Addr obj) {
    if (obj == kNull) return;
    uint32_t bits = read_u32(obj + kOffGcBits);
    if (bits & kGcMarkBit) return;
    write_u32(obj + kOffGcBits, bits | kGcMarkBit);
    worklist.push_back(obj);
  };
  roots_->enumerate_roots([&](uint64_t* slot) { mark(Addr(*slot)); });
  while (!worklist.empty()) {
    Addr obj = worklist.back();
    worklist.pop_back();
    scan_object_refs(obj,
                     [&](size_t slot_off) { mark(Addr(read_u64(slot_off))); });
  }

  // Sweep: rebuild the free list, coalescing adjacent garbage.
  free_list_.clear();
  size_t off = 8;
  while (off < bump_) {
    uint32_t size = read_u32(off + kOffSize);
    DV_CHECK_MSG(size >= kHeaderBytes && off + size <= bump_,
                 "heap walk corrupt at " << off);
    uint32_t cid = read_u32(off + kOffClassId);
    bool live = false;
    if (cid != kClassIdFreeBlock) {
      uint32_t bits = read_u32(off + kOffGcBits);
      live = (bits & kGcMarkBit) != 0;
      if (live) write_u32(off + kOffGcBits, bits & ~kGcMarkBit);
    }
    if (!live) {
      if (!free_list_.empty() &&
          free_list_.back().off + free_list_.back().size == off) {
        free_list_.back().size += size;
        write_u32(free_list_.back().off + kOffSize,
                  uint32_t(free_list_.back().size));
      } else {
        free_list_.push_back(FreeBlock{off, size});
        write_u32(off + kOffClassId, kClassIdFreeBlock);
        write_u32(off + kOffSize, size);
      }
    }
    off += size;
  }
  // Retract the bump pointer past a trailing free block.
  if (!free_list_.empty() &&
      free_list_.back().off + free_list_.back().size == bump_) {
    bump_ = free_list_.back().off;
    free_list_.pop_back();
  }
}

size_t Heap::used_bytes() const {
  size_t used = bump_ - (from_base_ + 8);
  for (const auto& fb : free_list_) used -= fb.size;
  return used;
}

uint64_t Heap::image_hash() const {
  Fnv1a h;
  size_t off = from_base_ + 8;
  while (off < bump_) {
    uint32_t size = read_u32(off + kOffSize);
    uint32_t cid = read_u32(off + kOffClassId);
    if (cid != kClassIdFreeBlock) {
      h.update_u64(off - from_base_);  // position, space-relative
      h.update(mem_.data() + off, size);
    }
    off += size;
  }
  return h.digest();
}

bool Heap::valid_range(Addr addr, size_t n) const {
  return addr >= from_base_ + 8 && size_t(addr) + n <= bump_;
}

void Heap::serialize(ByteWriter& w) const {
  w.put_u8(cfg_.gc == GcKind::kSemispaceCopying ? 0 : 1);
  w.put_uvarint(space_bytes_);
  w.put_uvarint(from_base_);
  w.put_uvarint(bump_);
  w.put_uvarint(stats_.alloc_count);
  w.put_uvarint(stats_.alloc_bytes);
  w.put_uvarint(stats_.gc_count);
  w.put_uvarint(stats_.gc_live_bytes_last);
  w.put_uvarint(free_list_.size());
  for (const FreeBlock& fb : free_list_) {
    w.put_uvarint(fb.off);
    w.put_uvarint(fb.size);
  }
  // The live space only: bytes in the inactive semispace are never read
  // (allocation zeroes, GC copies out of from-space only).
  size_t len = bump_ - (from_base_ + 8);
  w.put_uvarint(len);
  w.put_bytes(mem_.data() + from_base_ + 8, len);
}

void Heap::restore(ByteReader& r) {
  uint8_t gc = r.get_u8();
  DV_CHECK_MSG(gc == (cfg_.gc == GcKind::kSemispaceCopying ? 0 : 1),
               "checkpoint GC kind mismatch");
  size_t space = size_t(r.get_uvarint());
  DV_CHECK_MSG(space == space_bytes_, "checkpoint heap size mismatch ("
                                          << space << " vs " << space_bytes_
                                          << ")");
  from_base_ = size_t(r.get_uvarint());
  bump_ = size_t(r.get_uvarint());
  stats_.alloc_count = r.get_uvarint();
  stats_.alloc_bytes = r.get_uvarint();
  stats_.gc_count = r.get_uvarint();
  stats_.gc_live_bytes_last = r.get_uvarint();
  free_list_.clear();
  size_t nfree = size_t(r.get_uvarint());
  for (size_t i = 0; i < nfree; ++i) {
    FreeBlock fb;
    fb.off = size_t(r.get_uvarint());
    fb.size = size_t(r.get_uvarint());
    free_list_.push_back(fb);
  }
  std::fill(mem_.begin(), mem_.end(), uint8_t(0));
  size_t len = size_t(r.get_uvarint());
  DV_CHECK_MSG(from_base_ + 8 + len <= mem_.size() &&
                   len == bump_ - (from_base_ + 8),
               "checkpoint heap image inconsistent");
  r.get_bytes(mem_.data() + from_base_ + 8, len);
}

}  // namespace dejavu::heap

// Flight recorder: always-on black-box observability (src/flight).
//
// A FlightRecorder is a TraceSink that keeps the recording in a bounded
// in-memory ring instead of writing it anywhere. The recording engine's
// chunks are framed exactly as the v4/v5 container would frame them and
// grouped into *epochs*: every flight_epoch_preempts-th preemptive switch
// the engine reaches a VM safepoint, flushes its writer (so the cut falls
// on an entry/chunk boundary) and hands the sink a checkpoint blob that
// restores the whole machine -- VM snapshot plus engine resume state --
// to exactly that cut (TraceSink::begin_epoch). The recorder then retires
// the oldest epochs beyond the configured window: healthy execution costs
// O(window) memory and writes zero trace bytes to disk.
//
// On a crash (or an explicit dump) seal_to_file() emits the retained
// window as a self-contained trace file: container header, a kFlight
// descriptor chunk (window geometry, seal reason, the start checkpoint),
// the retained data chunks verbatim, the meta chunk the engine produced at
// detach, and a seal whose per-stream totals the recorder computes over
// the *retained* chunks. The result passes every existing scan and replays
// through the ordinary engine -- resumed from the embedded checkpoint when
// one is present, from the beginning when the run was shorter than one
// epoch (then the tail simply is the complete trace).
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/replay/trace_io.hpp"

namespace dejavu::flight {

// Schema tag carried by every kFlight chunk (obs_schema_check keys on it).
inline constexpr const char* kFlightSchema = "dejavu-flight-v1";

struct FlightConfig {
  // Epochs retained, including the currently filling one (--flight N).
  // The replayable history is therefore at least window_epochs - 1 and at
  // most window_epochs full epochs of execution.
  uint32_t window_epochs = 4;
  // Preemptive switches per epoch (--flight-epoch E); forwarded to
  // SymmetryConfig::flight_epoch_preempts by the record session.
  uint32_t epoch_preempts = 64;
};

// Decoded kFlight chunk payload: the tail's provenance plus the embedded
// start checkpoint. `checkpoint` is the engine's combined blob
// (replay::split_flight_checkpoint splits it); empty iff !has_checkpoint.
struct FlightInfo {
  bool has_checkpoint = false;
  uint32_t window_epochs = 0;
  uint32_t epoch_preempts = 0;
  uint64_t epochs_retained = 0;
  uint64_t epochs_retired = 0;
  uint64_t bytes_retired = 0;
  std::string seal_reason;
  uint64_t checkpoint_clock = 0;  // engine logical clock at the cut
  uint64_t checkpoint_instr = 0;  // VM instruction count at the cut
  std::vector<uint8_t> checkpoint;

  std::vector<uint8_t> encode() const;
  static FlightInfo decode(const std::vector<uint8_t>& payload);
  // One-line and JSON renderings for `dejavu flight info` / `report`.
  std::string describe() const;
  std::string describe_json() const;
};

// Ring statistics, also exported through the recorder's metric registry.
struct FlightStats {
  uint64_t checkpoints = 0;      // epochs opened by begin_epoch
  uint64_t epochs_retained = 0;  // currently in the ring (incl. the open one)
  uint64_t epochs_retired = 0;   // dropped out of the window
  uint64_t bytes_retained = 0;   // framed bytes currently in the ring
  uint64_t bytes_retired = 0;    // framed bytes dropped with retired epochs
  bool sealed = false;
};

class FlightRecorder : public replay::TraceSink {
 public:
  FlightRecorder(uint32_t version, uint32_t lanes, FlightConfig cfg);

  using TraceSink::write_chunk;
  void write_chunk(replay::StreamId id, const uint8_t* payload, size_t n,
                   replay::LaneId lane) override;
  void begin_epoch(std::vector<uint8_t> checkpoint, uint64_t clock,
                   uint64_t instr) override;

  // Writes the retained window as a self-contained sealed trace. Requires
  // that the engine detached first (the meta chunk must have arrived).
  void seal_to_file(const std::string& path, const std::string& reason);

  FlightStats stats() const;
  obs::MetricsSnapshot metrics() const { return registry_.snapshot(); }

 private:
  struct Epoch {
    bool has_checkpoint = false;
    std::vector<uint8_t> checkpoint;
    uint64_t clock = 0;
    uint64_t instr = 0;
    // Framed chunks ([wire_id][len le][payload][crc]) in arrival order,
    // plus the geometry needed to recompute the seal totals.
    std::vector<std::vector<uint8_t>> chunks;
    std::vector<uint8_t> wire_ids;
    std::vector<uint32_t> payload_lens;
    uint64_t framed_bytes = 0;
  };

  void retire_old_epochs();

  uint32_t version_;
  uint32_t lanes_;
  FlightConfig cfg_;
  std::deque<Epoch> epochs_;
  std::vector<uint8_t> meta_payload_;  // captured at the engine's finish
  bool meta_seen_ = false;
  bool sealed_ = false;

  obs::MetricRegistry registry_;
  obs::Counter* c_checkpoints_ = nullptr;
  obs::Counter* c_epochs_retired_ = nullptr;
  obs::Counter* c_bytes_retired_ = nullptr;
  obs::Gauge* g_epochs_retained_ = nullptr;
  obs::Gauge* g_bytes_retained_ = nullptr;
  uint64_t bytes_retained_ = 0;
  uint64_t bytes_retired_ = 0;
  uint64_t epochs_retired_ = 0;
};

}  // namespace dejavu::flight

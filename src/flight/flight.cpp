#include "src/flight/flight.hpp"

#include <cstdio>
#include <sstream>

#include "src/common/check.hpp"
#include "src/common/io.hpp"

namespace dejavu::flight {

using replay::LaneId;
using replay::StreamId;

namespace {

void json_escape_to(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (uint8_t(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

// Frame one chunk exactly as the container sinks do:
// [wire_id][payload_len le][payload][crc32 le].
std::vector<uint8_t> frame(uint8_t wire_id, const uint8_t* payload, size_t n) {
  ByteWriter w;
  w.put_u8(wire_id);
  w.put_u32_fixed(uint32_t(n));
  w.put_bytes(payload, n);
  w.put_u32_fixed(replay::chunk_crc(wire_id, payload, n));
  return w.take();
}

}  // namespace

// ----------------------------------------------------------- FlightInfo

std::vector<uint8_t> FlightInfo::encode() const {
  ByteWriter w;
  w.put_string(kFlightSchema);
  w.put_u8(has_checkpoint ? 1 : 0);
  w.put_uvarint(window_epochs);
  w.put_uvarint(epoch_preempts);
  w.put_uvarint(epochs_retained);
  w.put_uvarint(epochs_retired);
  w.put_uvarint(bytes_retired);
  w.put_string(seal_reason);
  w.put_uvarint(checkpoint_clock);
  w.put_uvarint(checkpoint_instr);
  w.put_uvarint(checkpoint.size());
  w.put_bytes(checkpoint.data(), checkpoint.size());
  return w.take();
}

FlightInfo FlightInfo::decode(const std::vector<uint8_t>& payload) {
  ByteReader r(payload);
  FlightInfo info;
  std::string schema = r.get_string();
  DV_CHECK_MSG(schema == kFlightSchema,
               "unknown flight descriptor schema '" << schema << "'");
  info.has_checkpoint = r.get_u8() != 0;
  info.window_epochs = uint32_t(r.get_uvarint());
  info.epoch_preempts = uint32_t(r.get_uvarint());
  info.epochs_retained = r.get_uvarint();
  info.epochs_retired = r.get_uvarint();
  info.bytes_retired = r.get_uvarint();
  info.seal_reason = r.get_string();
  info.checkpoint_clock = r.get_uvarint();
  info.checkpoint_instr = r.get_uvarint();
  size_t n = size_t(r.get_uvarint());
  info.checkpoint.resize(n);
  r.get_bytes(info.checkpoint.data(), n);
  DV_CHECK_MSG(r.at_end(), "trailing bytes in flight descriptor");
  DV_CHECK_MSG(info.has_checkpoint == !info.checkpoint.empty(),
               "flight descriptor checkpoint flag disagrees with payload");
  return info;
}

std::string FlightInfo::describe() const {
  std::ostringstream os;
  os << "flight tail: window " << window_epochs << " epoch(s) x "
     << epoch_preempts << " preempt(s), retained " << epochs_retained
     << ", retired " << epochs_retired << " (" << bytes_retired
     << " bytes), seal reason \"" << seal_reason << "\", ";
  if (has_checkpoint) {
    os << "resume checkpoint at clock " << checkpoint_clock << " / instr "
       << checkpoint_instr << " (" << checkpoint.size() << " bytes)";
  } else {
    os << "no checkpoint (run shorter than one epoch; tail is the full "
          "trace)";
  }
  return os.str();
}

std::string FlightInfo::describe_json() const {
  std::ostringstream os;
  os << "{\"schema\":\"" << kFlightSchema << "\""
     << ",\"has_checkpoint\":" << (has_checkpoint ? "true" : "false")
     << ",\"window_epochs\":" << window_epochs
     << ",\"epoch_preempts\":" << epoch_preempts
     << ",\"epochs_retained\":" << epochs_retained
     << ",\"epochs_retired\":" << epochs_retired
     << ",\"bytes_retired\":" << bytes_retired << ",\"seal_reason\":\"";
  json_escape_to(os, seal_reason);
  os << "\",\"checkpoint_clock\":" << checkpoint_clock
     << ",\"checkpoint_instr\":" << checkpoint_instr
     << ",\"checkpoint_bytes\":" << checkpoint.size() << "}";
  return os.str();
}

// ------------------------------------------------------- FlightRecorder

FlightRecorder::FlightRecorder(uint32_t version, uint32_t lanes,
                               FlightConfig cfg)
    : version_(version), lanes_(lanes == 0 ? 1 : lanes), cfg_(cfg) {
  DV_CHECK_MSG(cfg_.window_epochs >= 1, "flight window must be >= 1 epoch");
  DV_CHECK_MSG(lanes_ <= replay::kMaxLanes, "flight lane count out of range");
  c_checkpoints_ = registry_.counter("flight.checkpoints");
  c_epochs_retired_ = registry_.counter("flight.epochs.retired");
  c_bytes_retired_ = registry_.counter("flight.bytes.retired");
  g_epochs_retained_ = registry_.gauge("flight.epochs.retained");
  g_bytes_retained_ = registry_.gauge("flight.bytes.retained");
  // Epoch 0: execution from boot until the first checkpoint. It carries no
  // checkpoint -- if the run ends inside it, the tail is simply the whole
  // trace and replays from the beginning.
  epochs_.emplace_back();
  g_epochs_retained_->set(1);
}

void FlightRecorder::write_chunk(StreamId id, const uint8_t* payload,
                                 size_t n, LaneId lane) {
  DV_CHECK_MSG(!sealed_, "write_chunk on a sealed flight recorder");
  if (id == StreamId::kMeta) {
    // The engine's writer emits the meta chunk at finish; keep the payload
    // for the tail instead of storing it in an epoch -- the seal path
    // appends it last, where every reader expects it.
    meta_payload_.assign(payload, payload + n);
    meta_seen_ = true;
    return;
  }
  if (id == StreamId::kSeal) {
    // The writer's seal totals cover the whole run; the tail's cover only
    // the retained window. Swallow it -- seal_to_file recomputes.
    return;
  }
  uint8_t wire = replay::wire_stream_id(id, lane);
  Epoch& e = epochs_.back();
  e.chunks.push_back(frame(wire, payload, n));
  e.wire_ids.push_back(wire);
  e.payload_lens.push_back(uint32_t(n));
  uint64_t framed = e.chunks.back().size();
  e.framed_bytes += framed;
  bytes_retained_ += framed;
  g_bytes_retained_->set(int64_t(bytes_retained_));
}

void FlightRecorder::begin_epoch(std::vector<uint8_t> checkpoint,
                                 uint64_t clock, uint64_t instr) {
  DV_CHECK_MSG(!sealed_, "begin_epoch on a sealed flight recorder");
  DV_CHECK_MSG(!checkpoint.empty(), "epoch boundary without a checkpoint");
  Epoch e;
  e.has_checkpoint = true;
  e.checkpoint = std::move(checkpoint);
  e.clock = clock;
  e.instr = instr;
  epochs_.push_back(std::move(e));
  c_checkpoints_->add();
  retire_old_epochs();
  g_epochs_retained_->set(int64_t(epochs_.size()));
}

void FlightRecorder::retire_old_epochs() {
  // The window's first epoch must carry a checkpoint (it is where tail
  // replay resumes), so epoch 0 -- the only checkpoint-less epoch -- is
  // only retired once a checkpointed successor can take its place; that is
  // every successor, so the guard only matters for the start-up window.
  while (epochs_.size() > cfg_.window_epochs &&
         epochs_[1].has_checkpoint) {
    const Epoch& victim = epochs_.front();
    bytes_retired_ += victim.framed_bytes;
    DV_CHECK(bytes_retained_ >= victim.framed_bytes);
    bytes_retained_ -= victim.framed_bytes;
    epochs_retired_++;
    c_epochs_retired_->add();
    c_bytes_retired_->add(victim.framed_bytes);
    epochs_.pop_front();
  }
  g_bytes_retained_->set(int64_t(bytes_retained_));
}

void FlightRecorder::seal_to_file(const std::string& path,
                                  const std::string& reason) {
  DV_CHECK_MSG(!sealed_, "flight recorder sealed twice");
  DV_CHECK_MSG(meta_seen_,
               "seal_to_file before the engine detached (no meta chunk)");
  sealed_ = true;

  const Epoch& first = epochs_.front();
  FlightInfo info;
  info.has_checkpoint = first.has_checkpoint;
  info.window_epochs = cfg_.window_epochs;
  info.epoch_preempts = cfg_.epoch_preempts;
  info.epochs_retained = epochs_.size();
  info.epochs_retired = epochs_retired_;
  info.bytes_retired = bytes_retired_;
  info.seal_reason = reason;
  info.checkpoint_clock = first.clock;
  info.checkpoint_instr = first.instr;
  info.checkpoint = first.checkpoint;
  std::vector<uint8_t> flight_payload = info.encode();

  // Per-(stream, lane) totals over the retained chunks only; the kFlight
  // chunk itself is excluded from seal totals by the container contract.
  std::vector<uint64_t> sched_bytes(lanes_, 0), events_bytes(lanes_, 0);
  std::vector<uint32_t> sched_chunks(lanes_, 0), events_chunks(lanes_, 0);
  uint64_t order_bytes = 0;
  uint32_t order_chunks = 0;
  for (const Epoch& e : epochs_) {
    for (size_t i = 0; i < e.wire_ids.size(); ++i) {
      StreamId id;
      LaneId lane;
      DV_CHECK(replay::parse_wire_stream_id(e.wire_ids[i], &id, &lane));
      switch (id) {
        case StreamId::kSchedule:
          DV_CHECK(lane < lanes_);
          sched_bytes[lane] += e.payload_lens[i];
          sched_chunks[lane]++;
          break;
        case StreamId::kEvents:
          DV_CHECK(lane < lanes_);
          events_bytes[lane] += e.payload_lens[i];
          events_chunks[lane]++;
          break;
        case StreamId::kOrder:
          order_bytes += e.payload_lens[i];
          order_chunks++;
          break;
        default:
          DV_CHECK_MSG(false, "unexpected stream in flight ring");
      }
    }
  }

  ByteWriter out;
  out.put_u32_fixed(replay::kTraceMagic);
  out.put_u32_fixed(version_);
  // kFlight first: readers that want the descriptor (report, flight info)
  // find it without scanning past the data chunks.
  {
    std::vector<uint8_t> framed = frame(
        uint8_t(StreamId::kFlight), flight_payload.data(),
        flight_payload.size());
    out.put_bytes(framed.data(), framed.size());
  }
  for (const Epoch& e : epochs_) {
    for (const std::vector<uint8_t>& c : e.chunks) {
      out.put_bytes(c.data(), c.size());
    }
  }
  {
    std::vector<uint8_t> framed = frame(uint8_t(StreamId::kMeta),
                                        meta_payload_.data(),
                                        meta_payload_.size());
    out.put_bytes(framed.data(), framed.size());
  }
  ByteWriter sw;
  if (version_ >= replay::kTraceVersionMulti) {
    sw.put_uvarint(lanes_);
    sw.put_uvarint(order_bytes);
    sw.put_uvarint(order_chunks);
    for (uint32_t k = 0; k < lanes_; ++k) {
      sw.put_uvarint(sched_bytes[k]);
      sw.put_uvarint(events_bytes[k]);
      sw.put_uvarint(sched_chunks[k]);
      sw.put_uvarint(events_chunks[k]);
    }
  } else {
    sw.put_u64_fixed(sched_bytes[0]);
    sw.put_u64_fixed(events_bytes[0]);
    sw.put_u32_fixed(sched_chunks[0]);
    sw.put_u32_fixed(events_chunks[0]);
  }
  std::vector<uint8_t> seal_payload = sw.take();
  {
    std::vector<uint8_t> framed = frame(uint8_t(StreamId::kSeal),
                                        seal_payload.data(),
                                        seal_payload.size());
    out.put_bytes(framed.data(), framed.size());
  }
  write_file(path, out.bytes());
}

FlightStats FlightRecorder::stats() const {
  FlightStats s;
  s.checkpoints = c_checkpoints_->value();
  s.epochs_retained = epochs_.size();
  s.epochs_retired = epochs_retired_;
  s.bytes_retained = bytes_retained_;
  s.bytes_retired = bytes_retired_;
  s.sealed = sealed_;
  return s;
}

}  // namespace dejavu::flight

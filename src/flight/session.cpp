#include "src/flight/session.hpp"

#include "src/replay/parallel_io.hpp"

namespace dejavu::flight {

using replay::DejaVuEngine;
using replay::kTraceVersion;
using replay::kTraceVersionMulti;

FlightRecordResult record_flight(const std::string& tail_path,
                                 const bytecode::Program& prog,
                                 vm::VmOptions opts, vm::Environment& env,
                                 threads::TimerSource& timer,
                                 FlightConfig fcfg,
                                 const vm::NativeRegistry* natives,
                                 replay::SymmetryConfig cfg) {
  DV_CHECK_MSG(fcfg.epoch_preempts >= 1, "flight epoch must be >= 1 preempt");
  uint32_t lanes = cfg.lanes == 0 ? 1 : cfg.lanes;
  uint32_t version = lanes > 1 ? kTraceVersionMulti : kTraceVersion;
  cfg.flight_epoch_preempts = fcfg.epoch_preempts;
  auto sink = std::make_unique<FlightRecorder>(version, lanes, fcfg);
  FlightRecorder* rec = sink.get();
  DejaVuEngine engine(std::move(sink), cfg);
  vm::VmOptions vopts = opts;
  vopts.lanes = lanes;
  vm::Vm v(prog, vopts, env, timer, &engine, natives);
  FlightRecordResult r;
  r.tail_path = tail_path;
  try {
    v.run();
  } catch (const VmError& e) {
    // The black-box moment: the guest died. finish() is idempotent and
    // detaches the engine, whose writer emits the meta block the tail
    // needs; then the retained window seals with the crash as its reason.
    r.crashed = true;
    r.error = e.what();
    r.error_instr = v.instr_count();
    v.finish();
  }
  r.seal_reason = r.crashed ? "crash: " + r.error : "dump";
  rec->seal_to_file(tail_path, r.seal_reason);
  r.summary = v.summary();
  r.output = v.output();
  r.stats = engine.stats();
  r.metrics = engine.metrics();
  r.flight_metrics = rec->metrics();
  r.timeline = engine.timeline_events();
  r.flight = rec->stats();
  return r;
}

TailReplayResult replay_tail(const bytecode::Program& prog,
                             std::unique_ptr<replay::TraceSource> source,
                             vm::VmOptions opts, replay::SymmetryConfig cfg) {
  TailReplayResult out;
  std::vector<uint8_t> vm_blob, eng_blob;
  const std::vector<uint8_t>& fc = source->flight_chunk();
  if (!fc.empty()) {
    out.is_tail = true;
    out.info = FlightInfo::decode(fc);
    if (out.info.has_checkpoint) {
      replay::split_flight_checkpoint(out.info.checkpoint, &vm_blob,
                                      &eng_blob);
      out.from_checkpoint = true;
    }
  }
  DejaVuEngine engine(std::move(source), cfg);
  replay::BuiltinAnalyzers analyzers(cfg.obs);
  analyzers.install(engine);
  // All non-determinism is substituted from the trace (full or tail); these
  // live sources are placeholders the guest never observes.
  vm::ScriptedEnvironment env(0, 1, {}, 0);
  threads::NullTimer timer;
  vm::VmOptions vopts;
  if (out.from_checkpoint) {
    // The resuming VM must be built with the recording's configuration
    // (heap geometry, lanes, stack) -- it comes from the snapshot prologue,
    // not from the caller; only host-side knobs stay the caller's.
    vopts = vm::Vm::peek_snapshot_options(vm_blob);
    vopts.echo_output = opts.echo_output;
    vopts.max_instructions = opts.max_instructions;
    engine.prepare_resume(std::move(eng_blob));
  } else {
    vopts = opts;
    vopts.lanes = engine.lane_count() == 0 ? 1 : engine.lane_count();
  }
  vm::Vm v(prog, vopts, env, timer, &engine);
  if (out.from_checkpoint) {
    v.boot_from_snapshot(vm_blob);
  } else {
    v.boot();
  }
  try {
    v.run();
  } catch (const ReplayDivergence&) {
    throw;  // a symmetry violation, not the reproduced crash
  } catch (const VmError& e) {
    // A crash tail reproduces its recorded crash: report it, then detach
    // so the final verification still runs (the recorded meta was captured
    // at the same crashed state, so a faithful replay verifies clean).
    out.crashed = true;
    out.error = e.what();
    out.error_instr = v.instr_count();
    v.finish();
  }
  out.replay.summary = v.summary();
  out.replay.output = v.output();
  out.replay.stats = engine.stats();
  out.replay.verified = out.replay.stats.verified_ok;
  out.replay.metrics = engine.metrics();
  out.replay.timeline = engine.timeline_events();
  out.replay.divergence = engine.divergence();
  out.replay.analysis = analyzers.collect();
  out.replay.post_violation = engine.strict_carried_over();
  return out;
}

TailReplayResult replay_tail_file(const bytecode::Program& prog,
                                  const std::string& path,
                                  vm::VmOptions opts,
                                  replay::SymmetryConfig cfg) {
  std::unique_ptr<replay::TraceSource> source;
  if (cfg.io_jobs > 1) {
    source = std::make_unique<replay::MemoryTraceSource>(path, cfg.io_jobs);
  } else {
    source = replay::open_trace_source(path);
  }
  return replay_tail(prog, std::move(source), opts, cfg);
}

bool read_flight_info(const std::string& path, FlightInfo* info) {
  std::unique_ptr<replay::TraceSource> source =
      replay::open_trace_source(path);
  const std::vector<uint8_t>& fc = source->flight_chunk();
  if (fc.empty()) return false;
  *info = FlightInfo::decode(fc);
  return true;
}

}  // namespace dejavu::flight

// One-call flight-recorder sessions (src/flight).
//
// record_flight runs a guest with the recording engine writing into a
// FlightRecorder ring instead of a file: zero trace bytes reach disk while
// the run is healthy. When the guest crashes (VmError) -- or at a clean
// exit, for an explicit dump -- the retained window is sealed to
// `tail_path` as a self-contained replayable trace.
//
// replay_tail_file replays any trace file: a full trace replays from the
// beginning as always; a flight tail with an embedded checkpoint boots the
// VM from the snapshot and resumes the engine mid-trace. A tail sealed by
// a crash deterministically reproduces the crash: the same VmError at the
// same instruction count, which the result reports instead of throwing
// (symmetry violations still throw in strict mode).
#pragma once

#include <memory>
#include <string>

#include "src/flight/flight.hpp"
#include "src/replay/session.hpp"

namespace dejavu::flight {

struct FlightRecordResult {
  std::string tail_path;
  bool crashed = false;
  std::string error;       // the VmError text when crashed
  uint64_t error_instr = 0;  // VM instruction count at the crash
  std::string seal_reason;
  vm::BehaviorSummary summary;
  std::string output;
  replay::EngineStats stats;
  obs::MetricsSnapshot metrics;         // engine metrics
  obs::MetricsSnapshot flight_metrics;  // recorder ring metrics
  std::vector<obs::TimelineEvent> timeline;
  FlightStats flight;
};

// Records one execution into a flight ring and seals the tail to
// `tail_path` (reason "crash: <what>" if the guest threw, "dump"
// otherwise). cfg.flight_epoch_preempts is taken from fcfg.
FlightRecordResult record_flight(const std::string& tail_path,
                                 const bytecode::Program& prog,
                                 vm::VmOptions opts, vm::Environment& env,
                                 threads::TimerSource& timer,
                                 FlightConfig fcfg,
                                 const vm::NativeRegistry* natives = nullptr,
                                 replay::SymmetryConfig cfg = {});

struct TailReplayResult {
  replay::ReplayResult replay;
  // Tail provenance; window_epochs == 0 when the file is an ordinary full
  // trace (no kFlight chunk).
  bool is_tail = false;
  bool from_checkpoint = false;
  FlightInfo info;
  // A crash tail reproduces its recorded crash deterministically.
  bool crashed = false;
  std::string error;
  uint64_t error_instr = 0;
};

// Replays `source`, resuming from the embedded flight checkpoint when the
// trace is a tail that carries one. Guest VmErrors are reported in the
// result (the reproduced crash); ReplayDivergence still propagates when
// cfg.strict.
TailReplayResult replay_tail(const bytecode::Program& prog,
                             std::unique_ptr<replay::TraceSource> source,
                             vm::VmOptions opts,
                             replay::SymmetryConfig cfg = {});

TailReplayResult replay_tail_file(const bytecode::Program& prog,
                                  const std::string& path, vm::VmOptions opts,
                                  replay::SymmetryConfig cfg = {});

// Decodes the flight descriptor of a trace file; returns false (and leaves
// *info untouched) when the file has no kFlight chunk.
bool read_flight_info(const std::string& path, FlightInfo* info);

}  // namespace dejavu::flight

// Experiment E3 -- trace volume vs the critical-event approaches (§5).
//
// "Many previous approaches for replay capture the interactions among
// processes ... A major drawback of such approaches is the overhead, in
// time and particularly in space." DejaVu logs only ND events and
// preemptive switch deltas; Instant Replay logs a version entry per shared
// access; Recap/PPD log the value of every read; Russinovich-Cogswell log
// every dispatch with thread identities. This table reports bytes per run
// and bytes per million guest instructions for each scheme.
#include "bench/bench_json.hpp"
#include "bench/bench_util.hpp"

using namespace dejavu;
using namespace dejavu::bench;

namespace {

struct Row {
  const char* name;
  bytecode::Program prog;
};

void run_row(BenchSidecar& sc, const Row& row) {
  constexpr uint64_t kSeed = 7;

  replay::RecordResult dv = record_seeded(row.prog, kSeed);
  size_t dv_bytes = dv.trace.total_bytes();
  uint64_t instrs = dv.summary.instr_count;

  baselines::RcRecorder rc;
  run_hooked(row.prog, &rc, kSeed);
  size_t rc_bytes = rc.take_trace().serialized_bytes();

  vm::VmOptions ms;
  ms.heap.gc = heap::GcKind::kMarkSweep;
  baselines::InstantReplayRecorder crew;
  run_hooked(row.prog, &crew, kSeed, 40, 400, ms);
  size_t crew_bytes = crew.take_trace().serialized_bytes();

  baselines::ReadLogRecorder rl;
  run_hooked(row.prog, &rl, kSeed);
  size_t rl_bytes = rl.take_trace().serialized_bytes();

  auto per_m = [&](size_t b) { return double(b) * 1e6 / double(instrs); };
  std::printf("%-18s %9llu %8llu %8llu | %8zu %9zu %9zu %10zu\n", row.name,
              (unsigned long long)instrs,
              (unsigned long long)dv.trace.meta.preempt_switches,
              (unsigned long long)dv.trace.meta.nd_events, dv_bytes,
              rc_bytes, crew_bytes, rl_bytes);
  std::printf("%-18s %37s | %8.0f %9.0f %9.0f %10.0f  (bytes/Minstr)\n", "",
              "", per_m(dv_bytes), per_m(rc_bytes), per_m(crew_bytes),
              per_m(rl_bytes));
  sc.add(row.name, {{"instrs", double(instrs)},
                    {"preempt_switches",
                     double(dv.trace.meta.preempt_switches)},
                    {"nd_events", double(dv.trace.meta.nd_events)},
                    {"dejavu_bytes", double(dv_bytes)},
                    {"rc_bytes", double(rc_bytes)},
                    {"crew_bytes", double(crew_bytes)},
                    {"readlog_bytes", double(rl_bytes)},
                    {"dejavu_bytes_per_minstr", per_m(dv_bytes)}});
}

// Micro-bench for the byte-level fast paths the streaming writer leans on:
// ByteWriter::put_bytes (geometric reserve + bulk insert) and
// ByteReader::get_bytes (memcpy instead of a per-byte loop). Record-side
// throughput is bounded by these two when chunks are framed and CRC'd.
void run_io_microbench(BenchSidecar& sc) {
  constexpr size_t kRecord = 24;          // one small trace record
  constexpr size_t kTotal = 64 << 20;     // 64 MiB of appends
  std::vector<uint8_t> rec(kRecord, 0x5a);

  auto now = [] { return std::chrono::steady_clock::now(); };
  auto mbps = [](size_t bytes, std::chrono::steady_clock::duration d) {
    double secs = std::chrono::duration<double>(d).count();
    return double(bytes) / (1 << 20) / secs;
  };

  auto t0 = now();
  ByteWriter w;
  for (size_t done = 0; done < kTotal; done += kRecord)
    w.put_bytes(rec.data(), rec.size());
  auto t1 = now();

  std::vector<uint8_t> out(64 << 10);
  ByteReader r(w.bytes());
  size_t read = 0;
  while (r.remaining() >= out.size()) {
    r.get_bytes(out.data(), out.size());
    read += out.size();
  }
  auto t2 = now();

  rule();
  std::printf("io fast paths: put_bytes (%zuB records) %.0f MiB/s, "
              "get_bytes (64KiB chunks) %.0f MiB/s\n",
              kRecord, mbps(kTotal, t1 - t0), mbps(read, t2 - t1));
  sc.add("io_fast_paths", {{"put_bytes_mibps", mbps(kTotal, t1 - t0)},
                           {"get_bytes_mibps", mbps(read, t2 - t1)}});
}

}  // namespace

int main(int argc, char** argv) {
  BenchSidecar sc = BenchSidecar::from_args(&argc, argv, "bench_tracesize");
  rule('=');
  std::printf("E3: trace size by replay scheme (lower is better)\n");
  rule('=');
  std::printf("%-18s %9s %8s %8s | %8s %9s %9s %10s\n", "workload", "instrs",
              "preempt", "ndevents", "DejaVu", "R-C", "CREW", "read-log");
  rule();
  run_row(sc, {"compute", workloads::compute(2, 20000)});
  run_row(sc, {"counter_race", workloads::counter_race(4, 800)});
  run_row(sc, {"producer_consumer", workloads::producer_consumer(400, 8)});
  run_row(sc, {"alloc_churn", workloads::alloc_churn(8000, 16, 8)});
  run_row(sc, {"clock_mixer", workloads::clock_mixer(3, 400)});
  run_row(sc, {"sleepers", workloads::sleepers(6, 10)});
  rule();
  std::printf("claim check (§5): DejaVu's per-switch deltas stay orders of\n"
              "magnitude below per-access logging; the read-content log is\n"
              "the largest; R-C pays per dispatch rather than per preempt.\n");
  run_io_microbench(sc);
  sc.write();
  return 0;
}

// Experiment E6 -- the symmetric-instrumentation ablation (§2.4).
//
// DESIGN.md's design-choice table: each symmetry mechanism is disabled in
// turn and the record->replay round trip repeated over a seed sweep. The
// table reports how often replay diverges and what the first detected
// divergence is. With every mechanism on, the control row must be clean.
#include "bench/bench_json.hpp"
#include "bench/bench_util.hpp"

using namespace dejavu;
using namespace dejavu::bench;

namespace {

struct Ablation {
  const char* name;
  void (*apply)(replay::SymmetryConfig&);
};

void none(replay::SymmetryConfig&) {}
void no_prealloc(replay::SymmetryConfig& c) { c.preallocate_buffers = false; }
void no_preload(replay::SymmetryConfig& c) { c.preload_classes = false; }
void no_precompile(replay::SymmetryConfig& c) {
  c.precompile_methods = false;
}
void no_eager(replay::SymmetryConfig& c) {
  c.eager_stack_growth = false;
  c.record_stack_slots = 4;
  c.replay_stack_slots = 64;
}
void no_liveclock(replay::SymmetryConfig& c) {
  c.pause_logical_clock = false;
}
void no_warmup(replay::SymmetryConfig& c) {
  c.io_warmup = false;
  c.buffer_capacity = 128;
}

void run_row(BenchSidecar& sc, const Ablation& a) {
  constexpr int kSeeds = 20;
  int diverged = 0, output_corrupted = 0;
  uint64_t violations = 0;
  uint64_t first_clock = 0;
  std::string first;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    replay::SymmetryConfig cfg;
    cfg.strict = false;
    cfg.checkpoint_interval = 8;
    a.apply(cfg);
    vm::VmOptions opts;
    opts.initial_stack_slots = 64;
    replay::RecordResult rec = record_seeded(workloads::clock_mixer_racy(3, 40),
                                             uint64_t(seed), 5, 60, opts,
                                             cfg);
    replay::ReplayResult rep = replay::replay_run(
        workloads::clock_mixer_racy(3, 40), rec.trace, opts, cfg);
    if (!rep.verified) diverged++;
    if (rep.output != rec.output) output_corrupted++;
    violations += rep.stats.symmetry_violations;
    if (first.empty() && !rep.stats.first_violation.empty()) {
      first = rep.stats.first_violation;
      first_clock = rep.stats.first_violation_clock;
    }
  }
  std::printf("%-22s %8d/%-3d %10d/%-3d %10.1f\n", a.name, diverged, kSeeds,
              output_corrupted, kSeeds, double(violations) / kSeeds);
  if (!first.empty())
    std::printf("    first: %.90s (logical clock %llu)\n", first.c_str(),
                (unsigned long long)first_clock);
  sc.add(a.name, {{"diverged", double(diverged)},
                  {"seeds", double(kSeeds)},
                  {"bad_output", double(output_corrupted)},
                  {"violations_per_seed", double(violations) / kSeeds},
                  {"first_violation_clock", double(first_clock)}});
}

}  // namespace

int main(int argc, char** argv) {
  BenchSidecar sc =
      BenchSidecar::from_args(&argc, argv, "bench_symmetry_ablation");
  rule('=');
  std::printf("E6: symmetric-instrumentation ablation (workload: "
              "clock_mixer_racy, 20 seeds)\n");
  rule('=');
  std::printf("%-22s %12s %14s %12s\n", "mechanism disabled", "diverged",
              "bad output", "violations");
  rule();
  run_row(sc, {"(control: all on)", none});
  run_row(sc, {"preallocate_buffers", no_prealloc});
  run_row(sc, {"preload_classes", no_preload});
  run_row(sc, {"precompile_methods", no_precompile});
  run_row(sc, {"eager_stack_growth", no_eager});
  run_row(sc, {"pause_logical_clock", no_liveclock});
  run_row(sc, {"io_warmup", no_warmup});
  rule();
  std::printf("claim check (§2.4): every disabled mechanism causes detected\n"
              "divergence; the liveclock ablation additionally corrupts the\n"
              "replayed schedule (bad output). The control row is clean.\n");
  sc.write();
  return 0;
}

// Shared setup for the experiment harness: seeded recording environments
// and the standard native registry.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "src/baselines/instant_replay.hpp"
#include "src/baselines/read_log.hpp"
#include "src/baselines/russinovich_cogswell.hpp"
#include "src/replay/session.hpp"
#include "src/threads/timer.hpp"
#include "src/vm/env.hpp"
#include "src/workloads/workloads.hpp"

namespace dejavu::bench {

inline vm::NativeRegistry make_natives() {
  vm::NativeRegistry reg;
  reg.register_native(
      "host.mix", [](vm::NativeContext& nc, const std::vector<int64_t>& a) {
        int64_t acc = 17;
        for (int64_t v : a) acc = acc * 31 + v;
        if (!a.empty() && nc.vm().runtime_class("Main") != nullptr &&
            nc.vm().runtime_class("Main")->find_method("cb") != nullptr) {
          acc += nc.call_guest("Main", "cb", {a[0]});
        }
        return acc;
      });
  return reg;
}

// Runs a program with arbitrary hooks under a seeded environment+timer.
struct HookedRun {
  vm::BehaviorSummary summary;
  std::string output;
};

inline HookedRun run_hooked(const bytecode::Program& prog,
                            vm::ExecHooks* hooks, uint64_t seed,
                            uint64_t tmin = 40, uint64_t tmax = 400,
                            vm::VmOptions opts = {}) {
  vm::ScriptedEnvironment env(1000, 7, {1, 2, 3, 4, 5, 6, 7, 8}, 17);
  std::unique_ptr<threads::TimerSource> timer;
  if (seed == 0) {
    timer = std::make_unique<threads::NullTimer>();
  } else {
    timer = std::make_unique<threads::VirtualTimer>(seed, tmin, tmax);
  }
  vm::NativeRegistry natives = make_natives();
  vm::Vm v(prog, opts, env, *timer, hooks, &natives);
  v.run();
  return HookedRun{v.summary(), v.output()};
}

inline replay::RecordResult record_seeded(const bytecode::Program& prog,
                                          uint64_t seed, uint64_t tmin = 40,
                                          uint64_t tmax = 400,
                                          vm::VmOptions opts = {},
                                          replay::SymmetryConfig cfg = {}) {
  vm::ScriptedEnvironment env(1000, 7, {1, 2, 3, 4, 5, 6, 7, 8}, 17);
  std::unique_ptr<threads::TimerSource> timer;
  if (seed == 0) {
    timer = std::make_unique<threads::NullTimer>();
  } else {
    timer = std::make_unique<threads::VirtualTimer>(seed, tmin, tmax);
  }
  vm::NativeRegistry natives = make_natives();
  return replay::record_run(prog, opts, env, *timer, &natives, cfg);
}

inline void rule(char c = '-', int n = 78) {
  for (int i = 0; i < n; ++i) std::putchar(c);
  std::putchar('\n');
}

}  // namespace dejavu::bench

// Experiment E1 -- Figure 1 regenerated.
//
// Figure 1 of the paper shows how (A/B) the timing of preemptive thread
// switches and (C/D) environment values feeding branch decisions change a
// program's behaviour between runs with identical initial state. This
// harness regenerates both panels quantitatively: it sweeps schedules
// (timer seeds) and environments (clock bases), reports the outcome
// distribution, and then demonstrates the paper's remedy -- each distinct
// outcome is recorded once and replayed exactly.
#include <map>
#include <set>

#include "bench/bench_json.hpp"
#include "bench/bench_util.hpp"

using namespace dejavu;
using namespace dejavu::bench;

namespace {

void panel_ab(BenchSidecar& sc) {
  std::printf("Figure 1 (A/B): schedule non-determinism, fig1_race\n");
  std::printf("%-10s %-10s\n", "output", "frequency");
  std::map<std::string, int> hist;
  std::map<std::string, uint64_t> witness_seed;
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    replay::RecordResult r =
        record_seeded(workloads::fig1_race(), seed, 2, 30);
    std::string out = r.output.substr(0, r.output.find('\n'));
    hist[out]++;
    witness_seed.emplace(out, seed);
  }
  for (const auto& [out, n] : hist) std::printf("%-10s %d/200\n", out.c_str(), n);

  std::printf("replaying one witness of each outcome:\n");
  for (const auto& [out, seed] : witness_seed) {
    replay::RecordResult rec =
        record_seeded(workloads::fig1_race(), seed, 2, 30);
    replay::ReplayResult rep =
        replay::replay_run(workloads::fig1_race(), rec.trace, {});
    bool exact = rep.verified && rep.output == rec.output;
    std::printf("  outcome %-6s seed %-4llu -> replay %-6s %s\n", out.c_str(),
                (unsigned long long)seed,
                rep.output.substr(0, rep.output.find('\n')).c_str(),
                exact ? "EXACT" : "DIVERGED");
    sc.add("ab:" + out, {{"frequency", double(hist[out])},
                         {"witness_seed", double(seed)},
                         {"replay_exact", exact ? 1.0 : 0.0}});
  }
}

void panel_cd(BenchSidecar& sc) {
  std::printf("\nFigure 1 (C/D): environment-driven branching, fig1_clock\n");
  std::printf("(the Date() parity decides whether T1 waits; the switch\n");
  std::printf(" structure and final value follow)\n");
  std::printf("%-12s %-8s %-18s\n", "clock base", "output", "switch-seq hash");
  std::set<uint64_t> switch_hashes;
  for (int64_t base : {1000, 1001, 1002, 1003}) {
    vm::ScriptedEnvironment env(base, 7, {}, 17);
    threads::NullTimer timer;
    vm::NativeRegistry natives = make_natives();
    replay::RecordResult r = replay::record_run(workloads::fig1_clock(), {},
                                                env, timer, &natives);
    switch_hashes.insert(r.summary.switch_seq_hash);
    std::printf("%-12lld %-8s %016llx\n", (long long)base,
                r.output.substr(0, r.output.find('\n')).c_str(),
                (unsigned long long)r.summary.switch_seq_hash);

    replay::ReplayResult rep =
        replay::replay_run(workloads::fig1_clock(), r.trace, {});
    if (!rep.verified) {
      std::printf("REPLAY DIVERGED: %s\n", rep.stats.first_violation.c_str());
    }
  }
  std::printf("distinct switch structures across environments: %zu\n",
              switch_hashes.size());
  sc.add("cd:environments",
         {{"distinct_switch_structures", double(switch_hashes.size())}});
}

}  // namespace

int main(int argc, char** argv) {
  BenchSidecar sc =
      BenchSidecar::from_args(&argc, argv, "bench_fig1_nondeterminism");
  rule('=');
  std::printf("E1: non-deterministic execution examples (paper Figure 1)\n");
  rule('=');
  panel_ab(sc);
  panel_cd(sc);
  rule();
  std::printf("claim check: multiple outcomes from identical initial state;\n"
              "every recorded outcome replays exactly.\n");
  sc.write();
  return 0;
}

// The analysis-suite bench: replay-time cost of the full analyzer suite
// (profiler, lock contention, heap churn, critical path, cache simulator,
// race detector) versus a bare replay of the same trace -- the number the
// perturbation-free claim puts a price on. Single-lane and multi-lane
// recordings both appear, so the per-lane fan-out is covered.
//
// Emits the shared "dejavu-bench-v1" sidecar; tools/check.sh runs this to
// produce BENCH_analyze.json. Deliberately small enough for CI.
#include <chrono>

#include "bench/bench_json.hpp"
#include "bench/bench_util.hpp"
#include "src/obs/json.hpp"

using namespace dejavu;
using namespace dejavu::bench;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

double num_or(const obs::JsonValue& doc, const char* key) {
  const obs::JsonValue* v = doc.find(key);
  return v != nullptr ? v->number : 0.0;
}

void run_row(BenchSidecar& sc, const char* name,
             const bytecode::Program& prog, uint64_t seed, uint32_t lanes) {
  replay::SymmetryConfig rec_cfg;
  rec_cfg.lanes = lanes;
  replay::RecordResult rec = record_seeded(prog, seed, 5, 60, {}, rec_cfg);

  auto t0 = std::chrono::steady_clock::now();
  replay::ReplayResult plain = replay::replay_run(prog, rec.trace, {}, {});
  double plain_ms = ms_since(t0);

  replay::SymmetryConfig cfg;
  cfg.obs.analyze_profile = true;
  cfg.obs.analyze_locks = true;
  cfg.obs.analyze_heap = true;
  cfg.obs.analyze_races = true;
  cfg.obs.analyze_critpath = true;
  cfg.obs.analyze_cachesim = true;
  t0 = std::chrono::steady_clock::now();
  replay::ReplayResult full = replay::replay_run(prog, rec.trace, {}, cfg);
  double full_ms = ms_since(t0);

  obs::JsonValue critpath = obs::parse_json(full.analysis.critpath_json);
  obs::JsonValue cachesim = obs::parse_json(full.analysis.cachesim_json);
  double accesses = num_or(cachesim, "accesses");
  double l1_miss_pct =
      accesses > 0 ? 100.0 * num_or(cachesim, "l1_misses") / accesses : 0;
  size_t artifact_bytes =
      full.analysis.profile_json.size() + full.analysis.locks_json.size() +
      full.analysis.heap_json.size() + full.analysis.races_json.size() +
      full.analysis.critpath_json.size() + full.analysis.cachesim_json.size();

  bool exact = plain.verified && full.verified &&
               plain.summary == full.summary;
  std::printf("%-22s K=%u %8llu instrs  plain %7.2fms  analyzed %7.2fms  "
              "critpath %llu  L1 miss %5.1f%%  artifacts %zuB  %s\n",
              name, lanes, (unsigned long long)rec.summary.instr_count,
              plain_ms, full_ms,
              (unsigned long long)num_or(critpath, "critical_path_instrs"),
              l1_miss_pct, artifact_bytes, exact ? "exact" : "DIVERGED");

  sc.add(name,
         {{"lanes", double(lanes)},
          {"instrs", double(rec.summary.instr_count)},
          {"replay_plain_ms", plain_ms},
          {"replay_analyzed_ms", full_ms},
          {"analyzer_overhead_pct",
           plain_ms > 0 ? 100.0 * (full_ms - plain_ms) / plain_ms : 0},
          {"critical_path_instrs", num_or(critpath, "critical_path_instrs")},
          {"critpath_switches", num_or(critpath, "switches")},
          {"cachesim_accesses", accesses},
          {"cachesim_l1_miss_pct", l1_miss_pct},
          {"false_sharing_lines", num_or(cachesim, "false_sharing_lines")},
          {"artifact_bytes", double(artifact_bytes)},
          {"replay_exact", exact ? 1.0 : 0.0}});
}

}  // namespace

int main(int argc, char** argv) {
  BenchSidecar sc = BenchSidecar::from_args(&argc, argv, "bench_analyze");
  rule('=');
  std::printf(
      "analysis suite: bare replay vs full analyzer fan-out (same trace)\n");
  rule('=');
  run_row(sc, "clock_mixer", workloads::clock_mixer(2, 30), 7, 1);
  run_row(sc, "lock_pingpong", workloads::lock_pingpong(40), 5, 1);
  run_row(sc, "false_sharing", workloads::false_sharing(40), 9, 1);
  run_row(sc, "alloc_churn", workloads::alloc_churn(300, 8, 4), 3, 1);
  // Multi-lane: the per-lane streams and cross-lane order events flow
  // through the same analyzer fan-out.
  run_row(sc, "pingpong_k2", workloads::lock_pingpong(40), 5, 2);
  run_row(sc, "pingpong_k4", workloads::lock_pingpong(40), 5, 4);
  rule();
  sc.write();
  return 0;
}

// Machine-readable results for the experiment harness.
//
// Every bench_* binary accepts `--json FILE` and writes a sidecar in one
// shared schema ("dejavu-bench-v1") next to its human-readable table:
//
//   { "schema": "dejavu-bench-v1",
//     "bench":  "bench_overhead",
//     "rows":   [ { "name": "...", "metrics": { "<k>": <number>, ... } } ] }
//
// Binaries that drive a replay engine may also accept `--timeline FILE`
// and dump a Chrome trace_event timeline of one representative run.
//
// Two integration styles:
//   * google-benchmark binaries replace BENCHMARK_MAIN() with
//     DV_BENCH_MAIN("name"): the sidecar flags are stripped before
//     benchmark::Initialize (which rejects unknown flags) and a reporter
//     captures every run as a row.
//   * custom-main binaries construct a BenchSidecar from argc/argv, add()
//     rows next to their printf tables, and write() before returning.
#pragma once

#include <benchmark/benchmark.h>

#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.hpp"
#include "src/obs/json.hpp"
#include "src/obs/timeline.hpp"

namespace dejavu::bench {

class BenchSidecar {
 public:
  explicit BenchSidecar(std::string bench_name)
      : bench_(std::move(bench_name)) {}

  // Consumes `--json FILE` / `--timeline FILE` from argv (compacting it in
  // place and updating *argc) so downstream flag parsers never see them.
  static BenchSidecar from_args(int* argc, char** argv,
                                const char* bench_name) {
    BenchSidecar sc(bench_name);
    int w = 1;
    for (int r = 1; r < *argc; ++r) {
      std::string a = argv[r];
      if ((a == "--json" || a == "--timeline") && r + 1 < *argc) {
        (a == "--json" ? sc.json_path_ : sc.timeline_path_) = argv[++r];
        continue;
      }
      argv[w++] = argv[r];
    }
    *argc = w;
    argv[w] = nullptr;
    return sc;
  }

  using Metrics = std::vector<std::pair<std::string, double>>;

  void add(const std::string& row_name, Metrics metrics) {
    rows_.push_back(Row{row_name, std::move(metrics)});
  }

  bool json_wanted() const { return !json_path_.empty(); }
  bool timeline_wanted() const { return !timeline_path_.empty(); }

  void set_timeline(std::vector<obs::TimelineEvent> events) {
    timeline_events_ = std::move(events);
  }

  // Writes whichever sidecars were requested; a no-op without flags, so
  // benches call it unconditionally.
  void write() const {
    if (json_wanted()) {
      write_file(json_path_, to_json());
      std::fprintf(stderr, "bench json: %s\n", json_path_.c_str());
    }
    if (timeline_wanted()) {
      write_file(timeline_path_,
                 obs::timeline_to_chrome_json(timeline_events_, bench_));
      std::fprintf(stderr, "bench timeline: %s\n", timeline_path_.c_str());
    }
  }

  std::string to_json() const {
    obs::JsonWriter w;
    w.begin_object();
    w.kv("schema", "dejavu-bench-v1");
    w.kv("bench", bench_);
    w.key("rows");
    w.begin_array();
    for (const Row& r : rows_) {
      w.begin_object();
      w.kv("name", r.name);
      w.key("metrics");
      w.begin_object();
      for (const auto& [k, v] : r.metrics) w.kv(k, v);
      w.end_object();
      w.end_object();
    }
    w.end_array();
    w.end_object();
    return w.str();
  }

 private:
  struct Row {
    std::string name;
    Metrics metrics;
  };

  static void write_file(const std::string& path, const std::string& body) {
    std::ofstream out(path, std::ios::trunc);
    if (!out.good()) throw VmError("cannot write " + path);
    out << body << '\n';
    DV_CHECK_MSG(out.good(), "short write: " + path);
  }

  std::string bench_;
  std::string json_path_;
  std::string timeline_path_;
  std::vector<Row> rows_;
  std::vector<obs::TimelineEvent> timeline_events_;
};

// Tees google-benchmark runs into the sidecar while keeping the normal
// console table.
class SidecarReporter : public ::benchmark::ConsoleReporter {
 public:
  explicit SidecarReporter(BenchSidecar* sidecar) : sidecar_(sidecar) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& r : runs) {
      if (r.error_occurred) continue;
      BenchSidecar::Metrics m;
      m.emplace_back("real_time", r.GetAdjustedRealTime());
      m.emplace_back("cpu_time", r.GetAdjustedCPUTime());
      m.emplace_back("iterations", double(r.iterations));
      for (const auto& [name, counter] : r.counters)
        m.emplace_back(name, counter.value);
      sidecar_->add(r.benchmark_name(), std::move(m));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  BenchSidecar* sidecar_;
};

}  // namespace dejavu::bench

// Drop-in for BENCHMARK_MAIN() with sidecar support.
#define DV_BENCH_MAIN(bench_name)                                         \
  int main(int argc, char** argv) {                                       \
    ::dejavu::bench::BenchSidecar sidecar =                               \
        ::dejavu::bench::BenchSidecar::from_args(&argc, argv, bench_name); \
    ::benchmark::Initialize(&argc, argv);                                 \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;   \
    ::dejavu::bench::SidecarReporter reporter(&sidecar);                  \
    ::benchmark::RunSpecifiedBenchmarks(&reporter);                       \
    ::benchmark::Shutdown();                                              \
    sidecar.write();                                                      \
    return 0;                                                             \
  }

// Experiment E2 -- instrumentation precision (record/replay overhead).
//
// The paper's "precision" requirement (§1): the instrumented execution
// should be close to the uninstrumented one. This google-benchmark binary
// measures guest instructions/second for each execution mode:
//
//   off      -- plain VM, no hooks (the uninstrumented baseline)
//   record   -- DejaVu recording
//   replay   -- DejaVu replaying a recorded trace
//   readlog  -- Recap/PPD-style every-read logging (the §5 comparison)
//   crew     -- Instant Replay CREW version logging
//   rc       -- Russinovich-Cogswell every-dispatch logging
//
// Expected shape: record ~ off (DejaVu logs only ND events and switch
// deltas), while the per-access baselines pay on every heap read.
#include <benchmark/benchmark.h>

#include "bench/bench_json.hpp"
#include "bench/bench_util.hpp"

using namespace dejavu;
using namespace dejavu::bench;

namespace {

enum Mode : int64_t {
  kOff = 0,
  kRecord = 1,
  kReplay = 2,
  kReadLog = 3,
  kCrew = 4,
  kRc = 5,
};

const char* mode_name(int64_t m) {
  switch (m) {
    case kOff: return "off";
    case kRecord: return "record";
    case kReplay: return "replay";
    case kReadLog: return "readlog";
    case kCrew: return "crew";
    case kRc: return "rc";
  }
  return "?";
}

bytecode::Program workload(int64_t w) {
  switch (w) {
    case 0: return workloads::compute(2, 20000);
    case 1: return workloads::counter_race(4, 800);
    case 2: return workloads::producer_consumer(400, 8);
    case 3: return workloads::alloc_churn(8000, 16, 8);
    case 4: return workloads::clock_mixer(3, 400);
  }
  throw VmError("bad workload index");
}

const char* workload_name(int64_t w) {
  switch (w) {
    case 0: return "compute";
    case 1: return "counter_race";
    case 2: return "producer_consumer";
    case 3: return "alloc_churn";
    case 4: return "clock_mixer";
  }
  return "?";
}

void BM_Execution(benchmark::State& state) {
  int64_t w = state.range(0);
  int64_t mode = state.range(1);
  bytecode::Program prog = workload(w);
  constexpr uint64_t kSeed = 7;

  // One small heap configuration for every mode: VM construction cost
  // (zeroing the heap) must not drown the instrumentation differences,
  // and the CREW baseline needs stable addresses (mark-sweep) anyway.
  vm::VmOptions opts;
  opts.heap.size_bytes = 2 << 20;
  opts.heap.gc = heap::GcKind::kMarkSweep;
  replay::SymmetryConfig scfg;
  scfg.buffer_capacity = 4096;

  // Replay needs a trace up front.
  replay::TraceFile trace;
  if (mode == kReplay)
    trace = record_seeded(prog, kSeed, 40, 400, opts, scfg).trace;

  uint64_t instrs = 0;
  for (auto _ : state) {
    switch (mode) {
      case kOff: {
        HookedRun r = run_hooked(prog, nullptr, kSeed, 40, 400, opts);
        instrs += r.summary.instr_count;
        break;
      }
      case kRecord: {
        replay::RecordResult r =
            record_seeded(prog, kSeed, 40, 400, opts, scfg);
        instrs += r.summary.instr_count;
        break;
      }
      case kReplay: {
        replay::ReplayResult r = replay::replay_run(prog, trace, opts, scfg);
        instrs += r.summary.instr_count;
        break;
      }
      case kReadLog: {
        baselines::ReadLogRecorder rec;
        HookedRun r = run_hooked(prog, &rec, kSeed, 40, 400, opts);
        instrs += r.summary.instr_count;
        break;
      }
      case kCrew: {
        baselines::InstantReplayRecorder rec;
        HookedRun r = run_hooked(prog, &rec, kSeed, 40, 400, opts);
        instrs += r.summary.instr_count;
        break;
      }
      case kRc: {
        baselines::RcRecorder rec;
        HookedRun r = run_hooked(prog, &rec, kSeed, 40, 400, opts);
        instrs += r.summary.instr_count;
        break;
      }
    }
  }
  state.SetItemsProcessed(int64_t(instrs));
  state.SetLabel(std::string(workload_name(w)) + "/" + mode_name(mode));
}

}  // namespace

BENCHMARK(BM_Execution)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {kOff, kRecord, kReplay, kReadLog,
                                     kCrew, kRc}})
    ->Unit(benchmark::kMillisecond);

DV_BENCH_MAIN("bench_overhead");

// Experiment E7 -- replay-time cost of thread-ID mapping (§5).
//
// "Since they do not replay the (operating system's) thread package
// itself, their replay mechanism must tell the thread package which thread
// to schedule at each thread switch. This entails maintaining a mapping
// between the thread executing during record and during replay. This is a
// significant execution cost that DejaVu does not incur."
//
// Measures replay wall time for DejaVu vs the Russinovich-Cogswell
// replayer on switch-heavy workloads, and reports RC's per-switch map
// traffic.
#include <benchmark/benchmark.h>

#include "bench/bench_json.hpp"
#include "bench/bench_util.hpp"

using namespace dejavu;
using namespace dejavu::bench;

namespace {

bytecode::Program workload(int64_t w) {
  switch (w) {
    case 0: return workloads::counter_race(8, 400);
    case 1: return workloads::producer_consumer(600, 4);
    case 2: return workloads::lock_pingpong(600);
  }
  throw VmError("bad workload");
}

const char* workload_name(int64_t w) {
  return w == 0 ? "counter_race/8" : (w == 1 ? "prodcons" : "pingpong");
}

vm::VmOptions small_heap() {
  vm::VmOptions opts;
  opts.heap.size_bytes = 2 << 20;
  opts.heap.gc = heap::GcKind::kMarkSweep;
  return opts;
}

void BM_DejaVuReplay(benchmark::State& state) {
  bytecode::Program prog = workload(state.range(0));
  vm::VmOptions opts = small_heap();
  replay::SymmetryConfig scfg;
  scfg.buffer_capacity = 4096;
  replay::RecordResult rec = record_seeded(prog, 7, 20, 120, opts, scfg);
  uint64_t switches = 0;
  for (auto _ : state) {
    replay::ReplayResult rep = replay::replay_run(prog, rec.trace, opts, scfg);
    if (!rep.verified) state.SkipWithError("dejavu replay diverged");
    switches += rep.summary.switch_count;
  }
  state.SetItemsProcessed(int64_t(switches));
  state.counters["map_lookups_per_switch"] = 0;  // replays the package
  state.SetLabel(workload_name(state.range(0)));
}

void BM_RcReplay(benchmark::State& state) {
  bytecode::Program prog = workload(state.range(0));
  vm::VmOptions opts = small_heap();
  baselines::RcRecorder rec;
  HookedRun r = run_hooked(prog, &rec, 7, 20, 120, opts);
  baselines::RcTrace trace = rec.take_trace();
  uint64_t switches = 0;
  double lookups_per_switch = 0;
  for (auto _ : state) {
    baselines::RcReplayer rep(trace);
    HookedRun rr = run_hooked(prog, &rep, 0, 20, 120, opts);
    if (!rep.verified()) state.SkipWithError("rc replay diverged");
    if (rr.summary.output_hash != r.summary.output_hash)
      state.SkipWithError("rc replay output mismatch");
    switches += rr.summary.switch_count;
    lookups_per_switch =
        double(rep.map_lookups()) / double(rr.summary.switch_count);
  }
  state.SetItemsProcessed(int64_t(switches));
  state.counters["map_lookups_per_switch"] = lookups_per_switch;
  state.SetLabel(workload_name(state.range(0)));
}

}  // namespace

BENCHMARK(BM_DejaVuReplay)->Arg(0)->Arg(1)->Arg(2)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_RcReplay)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

DV_BENCH_MAIN("bench_threadmap_cost");

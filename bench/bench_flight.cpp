// The flight-recorder bench: what does "always-on" cost? One workload, three
// configurations --
//
//   bare     the VM alone, no engine attached (the floor)
//   flight   recording into the bounded in-memory ring, sealed at exit
//   full     recording the whole trace to a file (the classic sink)
//
// The claim under test: flight recording prices like full recording on CPU
// (same instrumented path; the ring only reframes the same bytes) while its
// storage cost is O(window) resident bytes and ZERO trace bytes on disk
// until a seal, versus the full sink's O(run) file.
//
// Emits the shared "dejavu-bench-v1" sidecar; tools/check.sh runs this to
// produce BENCH_flight.json. Deliberately small enough for CI.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench/bench_json.hpp"
#include "bench/bench_util.hpp"
#include "src/flight/session.hpp"

using namespace dejavu;
using namespace dejavu::bench;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void run_row(BenchSidecar& sc, const char* name,
             const bytecode::Program& prog, uint64_t seed) {
  const std::string dir = std::filesystem::temp_directory_path().string();
  const std::string full_path = dir + "/dejavu_bench_flight_full.djv";
  const std::string tail_path = dir + "/dejavu_bench_flight_tail.djv";

  // Bare: the uninstrumented floor.
  auto t0 = std::chrono::steady_clock::now();
  uint64_t instrs = 0;
  {
    vm::ScriptedEnvironment env(1000, 7, {1, 2, 3, 4, 5, 6, 7, 8}, 17);
    threads::VirtualTimer timer(seed, 40, 400);
    vm::NativeRegistry natives = make_natives();
    vm::Vm v(prog, {}, env, timer, nullptr, &natives);
    v.run();
    instrs = v.summary().instr_count;
  }
  double bare_ms = ms_since(t0);

  // Full-trace sink: every chunk streams to the file as the run proceeds.
  t0 = std::chrono::steady_clock::now();
  {
    vm::ScriptedEnvironment env(1000, 7, {1, 2, 3, 4, 5, 6, 7, 8}, 17);
    threads::VirtualTimer timer(seed, 40, 400);
    vm::NativeRegistry natives = make_natives();
    replay::record_run_to(full_path, prog, {}, env, timer, &natives, {});
  }
  double full_ms = ms_since(t0);
  uint64_t trace_bytes = std::filesystem::file_size(full_path);

  // Flight ring: bounded window in memory, sealed once at exit.
  t0 = std::chrono::steady_clock::now();
  flight::FlightRecordResult fr;
  {
    vm::ScriptedEnvironment env(1000, 7, {1, 2, 3, 4, 5, 6, 7, 8}, 17);
    threads::VirtualTimer timer(seed, 40, 400);
    vm::NativeRegistry natives = make_natives();
    fr = flight::record_flight(tail_path, prog, {}, env, timer,
                               flight::FlightConfig{4, 16}, &natives, {});
  }
  double flight_ms = ms_since(t0);
  uint64_t tail_bytes = std::filesystem::file_size(tail_path);

  std::printf("%-18s %8llu instrs  bare %7.2fms  flight %7.2fms  "
              "full %7.2fms  ring %llu B (%llu ckpt)  tail %lluB  "
              "trace %lluB\n",
              name, (unsigned long long)instrs, bare_ms, flight_ms, full_ms,
              (unsigned long long)fr.flight.bytes_retained,
              (unsigned long long)fr.flight.checkpoints,
              (unsigned long long)tail_bytes,
              (unsigned long long)trace_bytes);

  sc.add(name,
         {{"instrs", double(instrs)},
          {"bare_ms", bare_ms},
          {"flight_ms", flight_ms},
          {"full_ms", full_ms},
          {"flight_overhead_pct",
           bare_ms > 0 ? 100.0 * (flight_ms - bare_ms) / bare_ms : 0},
          {"full_overhead_pct",
           bare_ms > 0 ? 100.0 * (full_ms - bare_ms) / bare_ms : 0},
          {"ring_bytes", double(fr.flight.bytes_retained)},
          {"ring_bytes_retired", double(fr.flight.bytes_retired)},
          {"checkpoints", double(fr.flight.checkpoints)},
          {"tail_bytes", double(tail_bytes)},
          {"trace_bytes", double(trace_bytes)}});

  std::filesystem::remove(full_path);
  std::filesystem::remove(tail_path);
}

}  // namespace

int main(int argc, char** argv) {
  BenchSidecar sc = BenchSidecar::from_args(&argc, argv, "bench_flight");
  rule('=');
  std::printf("flight recorder: bare VM vs flight ring vs full-trace sink\n");
  rule('=');
  run_row(sc, "counter_locked", workloads::counter_locked(4, 200), 7);
  run_row(sc, "clock_mixer", workloads::clock_mixer(3, 40), 5);
  run_row(sc, "alloc_churn", workloads::alloc_churn(500, 8, 4), 3);
  rule();
  sc.write();
  return 0;
}

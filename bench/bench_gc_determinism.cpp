// Experiment E8 -- GC and allocation determinism under replay (§1, §2.4).
//
// "The archetypical Java runtime service -- automatic memory management --
// is completely deterministic in Jalapeño." This harness records
// allocation-heavy runs across heap sizes and both collectors, replays
// them, and checks that GC happens the same number of times *at the same
// guest instructions* (compared through the audit logs, which replay
// verification hashes).
#include "bench/bench_json.hpp"
#include "bench/bench_util.hpp"

using namespace dejavu;
using namespace dejavu::bench;

namespace {

void run_row(BenchSidecar& sc, const char* name,
             const bytecode::Program& prog, size_t heap_bytes,
             heap::GcKind gc) {
  vm::VmOptions opts;
  opts.heap.size_bytes = heap_bytes;
  opts.heap.gc = gc;
  replay::SymmetryConfig cfg;
  cfg.buffer_capacity = 4096;

  replay::RecordResult rec = record_seeded(prog, 7, 40, 300, opts, cfg);
  replay::ReplayResult rep = replay::replay_run(prog, rec.trace, opts, cfg);

  std::printf("%-14s %-10s %7zuK %8llu gcs  %10llu allocs  replay:%s "
              "(gcs %llu)\n",
              name, gc == heap::GcKind::kSemispaceCopying ? "copying"
                                                          : "mark-sweep",
              heap_bytes >> 10, (unsigned long long)rec.summary.gc_count,
              (unsigned long long)rec.summary.alloc_count,
              rep.verified && rep.summary.gc_count == rec.summary.gc_count
                  ? "exact"
                  : "DIVERGED",
              (unsigned long long)rep.summary.gc_count);
  std::string row = std::string(name) + ":" +
                    (gc == heap::GcKind::kSemispaceCopying ? "copying"
                                                           : "mark-sweep") +
                    ":" + std::to_string(heap_bytes >> 10) + "K";
  sc.add(row, {{"heap_kb", double(heap_bytes >> 10)},
               {"gcs_record", double(rec.summary.gc_count)},
               {"gcs_replay", double(rep.summary.gc_count)},
               {"allocs", double(rec.summary.alloc_count)},
               {"replay_exact",
                rep.verified && rep.summary.gc_count == rec.summary.gc_count
                    ? 1.0
                    : 0.0}});
}

}  // namespace

int main(int argc, char** argv) {
  BenchSidecar sc =
      BenchSidecar::from_args(&argc, argv, "bench_gc_determinism");
  rule('=');
  std::printf("E8: GC determinism under replay\n");
  rule('=');
  for (heap::GcKind gc :
       {heap::GcKind::kSemispaceCopying, heap::GcKind::kMarkSweep}) {
    for (size_t kb : {128u, 256u, 1024u}) {
      run_row(sc, "alloc_churn", workloads::alloc_churn(4000, 16, 8), kb << 10,
              gc);
    }
    run_row(sc, "clock_mixer", workloads::clock_mixer(3, 200), 128 << 10, gc);
    run_row(sc, "prodcons", workloads::producer_consumer(300, 8), 128 << 10,
            gc);
  }
  rule();
  std::printf("claim check: GC counts (and, via the verified audit digest,\n"
              "GC instruction positions) are identical in record and "
              "replay.\n");
  sc.write();
  return 0;
}

// Experiment E4 -- replay accuracy (§1: "accurate, in that the replayed
// code exhibits exactly the same behavior as the instrumented code").
//
// For each workload, records N executions under N different schedules
// (timer seeds) and replays each. Accuracy is checked on four axes --
// console output, thread-switch sequence, final heap image, instruction
// count -- all folded into the engine's verification. The paper's claim is
// categorical: 100% of replays must be exact.
#include <set>

#include "bench/bench_json.hpp"
#include "bench/bench_util.hpp"

using namespace dejavu;
using namespace dejavu::bench;

namespace {

void run_row(BenchSidecar& sc, const char* name,
             const bytecode::Program& prog, int n_seeds, uint64_t tmin,
             uint64_t tmax) {
  int exact = 0;
  std::set<uint64_t> distinct_behaviours;
  uint64_t total_preempts = 0;
  std::string first_divergence;
  for (int seed = 1; seed <= n_seeds; ++seed) {
    replay::RecordResult rec =
        record_seeded(prog, uint64_t(seed), tmin, tmax);
    distinct_behaviours.insert(rec.summary.switch_seq_hash ^
                               rec.summary.output_hash);
    total_preempts += rec.trace.meta.preempt_switches;
    replay::SymmetryConfig cfg;
    cfg.strict = false;  // count, don't throw: we want the failure rate
    replay::ReplayResult rep = replay::replay_run(prog, rec.trace, {}, cfg);
    if (rep.verified && rep.output == rec.output) {
      exact++;
    } else if (first_divergence.empty()) {
      first_divergence = rep.stats.first_violation;
    }
  }
  std::printf("%-20s %4d/%-4d exact   %4zu distinct behaviours   "
              "%6.1f preempts/run\n",
              name, exact, n_seeds, distinct_behaviours.size(),
              double(total_preempts) / n_seeds);
  if (!first_divergence.empty())
    std::printf("  FIRST DIVERGENCE: %s\n", first_divergence.c_str());
  sc.add(name, {{"exact", double(exact)},
                {"seeds", double(n_seeds)},
                {"distinct_behaviours", double(distinct_behaviours.size())},
                {"preempts_per_run", double(total_preempts) / n_seeds}});
}

}  // namespace

int main(int argc, char** argv) {
  BenchSidecar sc =
      BenchSidecar::from_args(&argc, argv, "bench_accuracy");
  rule('=');
  std::printf("E4: replay accuracy over schedule sweeps (want: all exact)\n");
  rule('=');
  run_row(sc, "fig1_race", workloads::fig1_race(), 50, 2, 30);
  run_row(sc, "counter_race", workloads::counter_race(4, 40), 50, 3, 50);
  run_row(sc, "producer_consumer", workloads::producer_consumer(60, 4), 50, 3,
          60);
  run_row(sc, "lock_pingpong", workloads::lock_pingpong(40), 50, 3, 60);
  run_row(sc, "clock_mixer", workloads::clock_mixer(3, 40), 50, 3, 60);
  run_row(sc, "sleepers", workloads::sleepers(4, 15), 30, 5, 80);
  run_row(sc, "native_calls", workloads::native_calls(20), 30, 5, 80);
  run_row(sc, "alloc_churn", workloads::alloc_churn(1200, 16, 8), 30, 40, 200);
  rule();
  std::printf("accuracy is absolute (§1): any row below N/N is a failure.\n");
  sc.write();
  return 0;
}

// Experiment E5 -- remote reflection (§3, Figure 3).
//
// Two measurements:
//  1. latency of reflective queries through the remote boundary
//     (lineNumberOf, field walks, backtraces) vs the in-process
//     equivalents -- remote reflection costs more per query (every slot is
//     a PEEKDATA-style read), which is the price of perturbation freedom;
//  2. the perturbation check itself: a full battery of queries leaves the
//     application VM's heap image hash untouched.
#include <benchmark/benchmark.h>

#include "bench/bench_json.hpp"
#include "bench/bench_util.hpp"
#include "src/debugger/debugger.hpp"
#include "src/remote/process.hpp"
#include "src/remote/reflection.hpp"

using namespace dejavu;
using namespace dejavu::bench;

namespace {

struct App {
  bytecode::Program prog = workloads::debug_target();
  vm::ScriptedEnvironment env{1000, 7, {}, 17};
  threads::NullTimer timer;
  vm::Vm vm{prog, {}, env, timer};
  App() { vm.run(); }
};

App& app() {
  static App a;
  return a;
}

void BM_RemoteLineNumber(benchmark::State& state) {
  remote::VmRemoteProcess proc(app().vm);
  remote::RemoteReflection refl(proc, app().prog);
  std::vector<remote::RemoteObject> mtable = refl.method_table();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        refl.line_number_at(mtable[i % mtable.size()], 0));
    ++i;
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}

void BM_InProcessLineNumber(benchmark::State& state) {
  // The in-process equivalent: direct access to the program's line table.
  const bytecode::Program& prog = app().prog;
  std::vector<const bytecode::MethodDef*> methods;
  for (const auto& c : prog.classes)
    for (const auto& m : c.methods) methods.push_back(&m);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(methods[i % methods.size()]->code[0].line);
    ++i;
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}

void BM_RemoteFieldWalk(benchmark::State& state) {
  remote::VmRemoteProcess proc(app().vm);
  remote::RemoteReflection refl(proc, app().prog);
  std::vector<remote::RemoteObject> classes = refl.class_table();
  size_t i = 0;
  for (auto _ : state) {
    const remote::RemoteObject& c = classes[i % classes.size()];
    std::string name =
        refl.read_string(remote::as_object(refl.get_field(c, "name")));
    benchmark::DoNotOptimize(name);
    ++i;
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}

void BM_RemoteObjectTree(benchmark::State& state) {
  remote::VmRemoteProcess proc(app().vm);
  remote::RemoteReflection refl(proc, app().prog);
  std::vector<remote::RemoteObject> classes = refl.class_table();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        refl.describe_object(classes[i % classes.size()], 2));
    ++i;
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}

void BM_PerturbationCheck(benchmark::State& state) {
  // Queries + hash comparison; aborts the benchmark if anything perturbs.
  uint64_t before = app().vm.guest_heap().image_hash();
  remote::VmRemoteProcess proc(app().vm);
  remote::RemoteReflection refl(proc, app().prog);
  for (auto _ : state) {
    for (const auto& c : refl.class_table())
      benchmark::DoNotOptimize(refl.describe_object(c, 2));
    for (const auto& m : refl.method_table())
      benchmark::DoNotOptimize(refl.line_number_at(m, 0));
    if (app().vm.guest_heap().image_hash() != before) {
      state.SkipWithError("PERTURBATION DETECTED");
      return;
    }
  }
  state.counters["perturbations"] = 0;
}

}  // namespace

BENCHMARK(BM_RemoteLineNumber);
BENCHMARK(BM_InProcessLineNumber);
BENCHMARK(BM_RemoteFieldWalk);
BENCHMARK(BM_RemoteObjectTree);
BENCHMARK(BM_PerturbationCheck)->Unit(benchmark::kMicrosecond);

DV_BENCH_MAIN("bench_remote_reflection");

// The telemetry smoke bench: one fast record->replay round trip per
// workload with metrics and the timeline recorder enabled, emitting the
// shared "dejavu-bench-v1" sidecar (and, with --timeline, a Chrome
// trace_event dump of the last replay). tools/check.sh runs this to
// produce BENCH_smoke.json; it is deliberately small enough for CI.
#include "bench/bench_json.hpp"
#include "bench/bench_util.hpp"

using namespace dejavu;
using namespace dejavu::bench;

namespace {

void run_row(BenchSidecar& sc, const char* name,
             const bytecode::Program& prog, uint64_t seed) {
  replay::SymmetryConfig cfg;
  cfg.obs.timeline = true;
  cfg.checkpoint_interval = 16;

  replay::RecordResult rec = record_seeded(prog, seed, 5, 60, {}, cfg);
  replay::ReplayResult rep = replay::replay_run(prog, rec.trace, {}, cfg);

  const obs::MetricSample* preempts =
      rec.metrics.find("engine.schedule.preempt_switches");
  const obs::MetricSample* nd_clock = rec.metrics.find("engine.nd.clock");
  std::printf("%-20s %8llu instrs  %6lld preempts  %6lld clock-reads  "
              "timeline %zu+%zu events  replay:%s\n",
              name, (unsigned long long)rec.summary.instr_count,
              (long long)(preempts != nullptr ? preempts->value : 0),
              (long long)(nd_clock != nullptr ? nd_clock->value : 0),
              rec.timeline.size(), rep.timeline.size(),
              rep.verified ? "exact" : "DIVERGED");

  sc.add(name,
         {{"instrs", double(rec.summary.instr_count)},
          {"preempt_switches",
           double(preempts != nullptr ? preempts->value : 0)},
          {"clock_reads", double(nd_clock != nullptr ? nd_clock->value : 0)},
          {"trace_bytes", double(rec.trace.total_bytes())},
          {"record_timeline_events", double(rec.timeline.size())},
          {"replay_timeline_events", double(rep.timeline.size())},
          {"replay_exact", rep.verified ? 1.0 : 0.0}});
  // Keep the last replay's timeline: with --timeline the sidecar dumps it
  // as Chrome trace_event JSON.
  sc.set_timeline(rep.timeline);
}

}  // namespace

int main(int argc, char** argv) {
  BenchSidecar sc = BenchSidecar::from_args(&argc, argv, "bench_smoke");
  rule('=');
  std::printf("telemetry smoke: record+replay with metrics & timeline on\n");
  rule('=');
  run_row(sc, "fig1_race", workloads::fig1_race(), 3);
  run_row(sc, "counter_race", workloads::counter_race(3, 30), 5);
  run_row(sc, "clock_mixer", workloads::clock_mixer(2, 30), 7);
  run_row(sc, "producer_consumer", workloads::producer_consumer(40, 3), 9);
  rule();
  sc.write();
  return 0;
}
